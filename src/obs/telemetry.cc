#include "obs/telemetry.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/openmetrics.hh"
#include "util/logging.hh"

namespace suit::obs {

double
seriesValue(MetricKind kind, std::uint64_t raw)
{
    if (kind == MetricKind::Gauge)
        return std::bit_cast<double>(raw);
    return static_cast<double>(raw);
}

TelemetrySampler::TelemetrySampler(Registry &registry,
                                   TelemetryConfig config)
    : reg_(registry), cfg_(config),
      capacity_(std::max<std::size_t>(1, config.ringCapacity)),
      seq_(new std::atomic<std::uint64_t>[capacity_]),
      ids_(new std::atomic<std::uint64_t>[capacity_]),
      hostUsBits_(new std::atomic<std::uint64_t>[capacity_]),
      counts_(new std::atomic<std::uint32_t>[capacity_]),
      values_(new std::atomic<std::uint64_t>[capacity_ * kMaxSeries]),
      start_(std::chrono::steady_clock::now())
{
    SUIT_ASSERT(cfg_.intervalS > 0.0,
                "telemetry interval must be > 0, got %g",
                cfg_.intervalS);
    for (std::size_t i = 0; i < capacity_; ++i) {
        seq_[i].store(0, std::memory_order_relaxed);
        ids_[i].store(0, std::memory_order_relaxed);
        hostUsBits_[i].store(0, std::memory_order_relaxed);
        counts_[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < capacity_ * kMaxSeries; ++i)
        values_[i].store(0, std::memory_order_relaxed);
}

TelemetrySampler::~TelemetrySampler()
{
    stop();
}

void
TelemetrySampler::start()
{
    std::lock_guard lock(threadMu_);
    if (thread_.joinable())
        return; // already running
    threadStop_ = false;
    thread_ = std::thread([this] { samplerMain(); });
}

void
TelemetrySampler::stop()
{
    std::thread worker;
    {
        std::lock_guard lock(threadMu_);
        if (!thread_.joinable())
            return; // already stopped
        threadStop_ = true;
        worker = std::move(thread_);
    }
    threadCv_.notify_all();
    worker.join();
}

bool
TelemetrySampler::running() const
{
    std::lock_guard lock(threadMu_);
    return thread_.joinable();
}

void
TelemetrySampler::samplerMain()
{
    const auto interval =
        std::chrono::duration<double>(cfg_.intervalS);
    std::unique_lock lock(threadMu_);
    while (!threadStop_) {
        if (threadCv_.wait_for(lock, interval,
                               [this] { return threadStop_; }))
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
TelemetrySampler::refreshSeriesLocked(const Snapshot &snap)
{
    // Callers hold seriesMu_.  The registry is append-only in
    // registration order (snapshotInto order), so existing indices
    // never change meaning; only the new tail is appended.
    for (std::size_t i = series_.size(); i < snap.metrics.size();
         ++i) {
        if (series_.size() >= kMaxSeries) {
            seriesDropped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        series_.push_back(
            {snap.metrics[i].name, snap.metrics[i].kind});
    }
    seriesCount_.store(static_cast<std::uint32_t>(series_.size()),
                       std::memory_order_release);
}

std::uint64_t
TelemetrySampler::sampleOnce()
{
    std::lock_guard writer(sampleMu_);

    reg_.snapshotInto(back_);
    {
        std::lock_guard lock(seriesMu_);
        refreshSeriesLocked(back_);
    }

    const std::uint64_t id =
        lastId_.load(std::memory_order_relaxed) + 1;
    const std::size_t slot = (id - 1) % capacity_;
    const std::size_t n =
        std::min<std::size_t>(back_.metrics.size(), kMaxSeries);
    const double host_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();

    // Seqlock write: odd sequence marks the slot as in flux.
    const std::uint64_t s0 =
        seq_[slot].load(std::memory_order_relaxed);
    seq_[slot].store(s0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    ids_[slot].store(id, std::memory_order_relaxed);
    hostUsBits_[slot].store(std::bit_cast<std::uint64_t>(host_us),
                            std::memory_order_relaxed);
    counts_[slot].store(static_cast<std::uint32_t>(n),
                        std::memory_order_relaxed);
    std::atomic<std::uint64_t> *row = &values_[slot * kMaxSeries];
    for (std::size_t i = 0; i < n; ++i) {
        const MetricValue &m = back_.metrics[i];
        std::uint64_t raw = 0;
        switch (m.kind) {
          case MetricKind::Counter:
          case MetricKind::Histogram:
            raw = m.count;
            break;
          case MetricKind::Gauge:
            raw = std::bit_cast<std::uint64_t>(m.value);
            break;
        }
        row[i].store(raw, std::memory_order_relaxed);
    }
    seq_[slot].store(s0 + 2, std::memory_order_release);

    {
        std::lock_guard lock(snapMu_);
        std::swap(front_, back_);
    }
    lastId_.store(id, std::memory_order_release);
    return id;
}

std::uint64_t
TelemetrySampler::samplesTaken() const
{
    return lastId_.load(std::memory_order_acquire);
}

std::uint64_t
TelemetrySampler::seriesDropped() const
{
    return seriesDropped_.load(std::memory_order_relaxed);
}

std::vector<SeriesInfo>
TelemetrySampler::series() const
{
    std::lock_guard lock(seriesMu_);
    return series_;
}

std::size_t
TelemetrySampler::lastSamplesInto(std::vector<TelemetrySample> &out,
                                  std::size_t n) const
{
    out.clear();
    const std::uint64_t last =
        lastId_.load(std::memory_order_acquire);
    if (last == 0 || n == 0)
        return 0;
    const std::uint64_t window =
        std::min<std::uint64_t>({n, last, capacity_});
    const std::uint64_t first = last - window + 1;
    for (std::uint64_t id = first; id <= last; ++id) {
        const std::size_t slot = (id - 1) % capacity_;
        TelemetrySample sample;
        // Seqlock read; retry a few times, then skip the slot (the
        // sampler lapped us — the sample is gone anyway).
        for (int attempt = 0; attempt < 4; ++attempt) {
            const std::uint64_t s1 =
                seq_[slot].load(std::memory_order_acquire);
            if (s1 & 1)
                continue; // write in progress
            const std::uint64_t got =
                ids_[slot].load(std::memory_order_relaxed);
            const std::uint64_t host_bits =
                hostUsBits_[slot].load(std::memory_order_relaxed);
            const std::uint32_t count =
                counts_[slot].load(std::memory_order_relaxed);
            sample.raw.resize(count);
            const std::atomic<std::uint64_t> *row =
                &values_[slot * kMaxSeries];
            for (std::uint32_t i = 0; i < count; ++i)
                sample.raw[i] =
                    row[i].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            const std::uint64_t s2 =
                seq_[slot].load(std::memory_order_relaxed);
            if (s1 != s2)
                continue; // torn read, retry
            if (got != id) {
                sample.id = 0; // overwritten mid-scan
                break;
            }
            sample.id = got;
            sample.hostUs = std::bit_cast<double>(host_bits);
            break;
        }
        if (sample.id != 0)
            out.push_back(std::move(sample));
    }
    return out.size();
}

std::vector<TelemetrySample>
TelemetrySampler::lastSamples(std::size_t n) const
{
    std::vector<TelemetrySample> out;
    lastSamplesInto(out, n);
    return out;
}

Snapshot
TelemetrySampler::latestSnapshot() const
{
    std::lock_guard lock(snapMu_);
    return front_;
}

std::string
TelemetrySampler::renderLatestJson() const
{
    std::lock_guard lock(snapMu_);
    return renderMetricsJson(front_);
}

std::string
TelemetrySampler::renderOpenMetricsText() const
{
    std::lock_guard lock(snapMu_);
    return renderOpenMetrics(front_);
}

} // namespace suit::obs
