/**
 * @file
 * suit::obs metrics registry.
 *
 * A process-wide (or test-local) registry of named counters, gauges
 * and fixed-bucket histograms, designed so that *recording* a metric
 * from the simulator hot loop or a pool worker is lock-free:
 *
 *  - every metric registers once (mutex-protected) and receives a
 *    stable MetricId carrying its cell slot range;
 *  - every recording thread owns a private shard of atomic cells
 *    (modelled on the exec per-worker counters); add()/observe()
 *    touch only the calling thread's shard with relaxed atomics —
 *    no locks, no false sharing with readers;
 *  - snapshot() merges all shards under the registry mutex, which is
 *    race-free because the cells are atomics and shards are never
 *    freed before the registry;
 *  - the registry is *disabled* by default, and the enabled check is
 *    one relaxed atomic load, so instrumentation compiled into the
 *    PR 3 fast path costs near zero until a CLI turns it on.
 *
 * Gauges are registry-level (set() is rare and takes the mutex);
 * histograms occupy one shard cell per bucket and snapshot into
 * util::BucketHistogram, whose merge/percentile helpers the
 * exporters use.
 */

#ifndef SUIT_OBS_REGISTRY_HH
#define SUIT_OBS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/stats.hh"

namespace suit::obs {

/** What a metric measures. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Printable kind name ("counter", "gauge", "histogram"). */
const char *toString(MetricKind kind);

class Registry;

/**
 * Stable handle to a registered metric.  Cheap to copy; valid for
 * the registry's lifetime.  Obtain once (e.g. in a function-local
 * static) and reuse on the hot path.
 */
class MetricId
{
  public:
    MetricId() = default;

    /** True once bound to a metric. */
    bool valid() const { return info_ != nullptr; }

  private:
    friend class Registry;

    struct Info
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        std::uint32_t firstSlot = 0; //!< shard cell index
        std::uint32_t slots = 0;     //!< cells occupied (0 for gauges)
        std::uint32_t gaugeIndex = 0;
        std::vector<double> bounds;  //!< histogram bucket bounds
    };

    explicit MetricId(const Info *info) : info_(info) {}

    const Info *info_ = nullptr;
};

/** One metric of a Snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    /** Counter total (counters only). */
    std::uint64_t count = 0;
    /** Gauge value (gauges only). */
    double value = 0.0;
    /** Merged histogram (histograms only). */
    suit::util::BucketHistogram histogram;
};

/** Point-in-time merge of every shard, sorted by metric name. */
struct Snapshot
{
    std::vector<MetricValue> metrics;

    /** Metric by name; null when absent. */
    const MetricValue *find(const std::string &name) const;
};

/** Sharded metrics registry; see the file comment for the design. */
class Registry
{
  public:
    Registry();
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or look up) a counter.  Re-registering the same name
     * returns the existing id; the kind must match (panic otherwise).
     */
    MetricId counter(const std::string &name);

    /** Register (or look up) a gauge. */
    MetricId gauge(const std::string &name);

    /**
     * Register (or look up) a histogram over inclusive upper
     * @p bounds (strictly increasing; one implicit overflow bucket).
     * Re-registration must use identical bounds.
     */
    MetricId histogram(const std::string &name,
                       std::vector<double> bounds);

    /**
     * Add @p n to a counter.  Lock-free on the calling thread's
     * shard; dropped (one relaxed load) while the registry is
     * disabled.
     */
    void add(MetricId id, std::uint64_t n = 1);

    /** Record one histogram sample (lock-free, as add()). */
    void observe(MetricId id, double value);

    /** Set a gauge (mutex-protected; not for hot paths). */
    void set(MetricId id, double value);

    /** @{ Recording switch; disabled by default. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    /** @} */

    /** Merge every shard into a point-in-time snapshot. */
    Snapshot snapshot() const;

    /**
     * Merge every shard into @p out, reusing its buffers.  Metrics
     * appear in *registration* order (stable indices — the telemetry
     * ring's series ids), unlike snapshot()'s name order; the
     * renderers sort by name themselves, so both orders render
     * identically.  Once @p out has seen this registry's metric set,
     * refills allocate nothing — the telemetry sampler's
     * zero-steady-state-allocation contract.
     */
    void snapshotInto(Snapshot &out) const;

    /** Zero every cell and gauge (metrics stay registered). */
    void reset();

    /** Number of registered metrics. */
    std::size_t size() const;

    /**
     * Render the snapshot as an aligned text table: counters and
     * gauges with their value, histograms with total and p50/p90/p99.
     */
    std::string renderTable() const;

    /**
     * Render the snapshot as a JSON document
     * (schema "suit-obs-metrics-v1").
     */
    std::string renderJson() const;

  private:
    /**
     * Per-thread cell array.  Fixed capacity: growth would need
     * either a lock on the hot path or hazard tracking; kShardSlots
     * is two orders of magnitude above the libraries' metric count
     * and registration past it is a panic, not a corruption.
     */
    struct Shard
    {
        std::atomic<std::uint64_t> cells[1]; // flexible-array idiom
    };
    static constexpr std::uint32_t kShardSlots = 4096;

    MetricId registerMetric(const std::string &name, MetricKind kind,
                            std::vector<double> bounds);
    std::atomic<std::uint64_t> *cellsFor(const MetricId::Info &info);
    Shard &shardSlow();

    const std::uint64_t serial_; //!< distinguishes registry instances
    std::atomic<bool> enabled_{false};

    mutable std::mutex mu_;
    std::deque<MetricId::Info> infos_;       //!< stable addresses
    std::map<std::string, MetricId::Info *> byName_;
    std::uint32_t nextSlot_ = 0;
    std::vector<double> gauges_;
    std::map<std::thread::id, std::unique_ptr<Shard, void (*)(Shard *)>>
        shards_;
};

/**
 * Render @p snap as the "suit-obs-metrics-v1" JSON document, one
 * metric object per line, sorted by name regardless of the
 * snapshot's own order.  Registry::renderJson() and the telemetry
 * sampler's retained-snapshot dump share this renderer, which is
 * what keeps `--metrics-interval` dumps and the final dump
 * byte-compatible.
 */
std::string renderMetricsJson(const Snapshot &snap);

/** The process-wide registry the libraries record into. */
Registry &metrics();

} // namespace suit::obs

#endif // SUIT_OBS_REGISTRY_HH
