#include "obs/flight.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdio>

#include "obs/json.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::obs {

namespace {

// ---------------------------------------------------------------
// Span stack table.  Fixed storage, all-atomic words: FlightSpan
// runs on pool workers concurrently with a dump() on the main (or a
// signal) thread, and a post-mortem reader tolerates a stack caught
// mid-push — it reads whatever depth/entries pair it observes.
// ---------------------------------------------------------------

constexpr int kMaxSpanThreads = 64;
constexpr int kMaxSpanDepth = 16;

struct SpanEntry
{
    std::atomic<const char *> name{nullptr};
    std::atomic<const char *> cat{nullptr};
    std::atomic<std::uint64_t> startUsBits{0};
};

struct ThreadSpans
{
    std::atomic<std::uint32_t> depth{0};
    SpanEntry entries[kMaxSpanDepth];
};

ThreadSpans g_spans[kMaxSpanThreads];
std::atomic<int> g_spanThreads{0};
std::atomic<bool> g_spansEnabled{false};
std::atomic<FlightRecorder *> g_active{nullptr};

thread_local int t_spanSlot = -1; //!< -1 unclaimed, -2 table full

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

double
spanNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - processEpoch())
        .count();
}

// ---------------------------------------------------------------
// Crash-signal handlers (best effort; see the header comment).
// ---------------------------------------------------------------

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};

struct sigaction g_oldActions[sizeof(kCrashSignals) /
                              sizeof(kCrashSignals[0])];

void
crashHandler(int sig)
{
    if (FlightRecorder *recorder =
            g_active.load(std::memory_order_acquire))
        recorder->dump("crash-signal");
    // Restore default disposition and re-raise so the process still
    // dies with the original signal (core dumps, exit status).
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void
installCrashHandlers()
{
    struct sigaction action{};
    action.sa_handler = &crashHandler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0;
         i < sizeof(kCrashSignals) / sizeof(kCrashSignals[0]); ++i)
        sigaction(kCrashSignals[i], &action, &g_oldActions[i]);
}

void
restoreCrashHandlers()
{
    for (std::size_t i = 0;
         i < sizeof(kCrashSignals) / sizeof(kCrashSignals[0]); ++i)
        sigaction(kCrashSignals[i], &g_oldActions[i], nullptr);
}

} // namespace

bool
flightSpansActive()
{
    return g_spansEnabled.load(std::memory_order_relaxed);
}

FlightSpan::FlightSpan(const char *name, const char *cat)
{
    if (!g_spansEnabled.load(std::memory_order_relaxed))
        return;
    if (t_spanSlot == -1) {
        const int claimed =
            g_spanThreads.fetch_add(1, std::memory_order_relaxed);
        t_spanSlot = claimed < kMaxSpanThreads ? claimed : -2;
    }
    if (t_spanSlot < 0)
        return;
    ThreadSpans &spans = g_spans[t_spanSlot];
    const std::uint32_t d =
        spans.depth.load(std::memory_order_relaxed);
    if (d >= kMaxSpanDepth)
        return;
    SpanEntry &entry = spans.entries[d];
    entry.name.store(name, std::memory_order_relaxed);
    entry.cat.store(cat, std::memory_order_relaxed);
    entry.startUsBits.store(std::bit_cast<std::uint64_t>(spanNowUs()),
                            std::memory_order_relaxed);
    spans.depth.store(d + 1, std::memory_order_release);
    slot_ = t_spanSlot;
}

FlightSpan::~FlightSpan()
{
    if (slot_ < 0)
        return;
    ThreadSpans &spans = g_spans[slot_];
    const std::uint32_t d =
        spans.depth.load(std::memory_order_relaxed);
    if (d > 0)
        spans.depth.store(d - 1, std::memory_order_release);
}

FlightRecorder::FlightRecorder(
    FlightConfig config, std::shared_ptr<TelemetrySampler> sampler)
    : cfg_(std::move(config)), sampler_(std::move(sampler))
{
    sampleScratch_.reserve(cfg_.lastSamples);
    previous_ = g_active.exchange(this, std::memory_order_acq_rel);
    g_spansEnabled.store(true, std::memory_order_relaxed);
    if (cfg_.installSignalHandlers && previous_ == nullptr) {
        installCrashHandlers();
        installedHandlers_ = true;
    }
}

FlightRecorder::~FlightRecorder()
{
    g_active.store(previous_, std::memory_order_release);
    if (previous_ == nullptr)
        g_spansEnabled.store(false, std::memory_order_relaxed);
    if (installedHandlers_)
        restoreCrashHandlers();
}

FlightRecorder *
FlightRecorder::active()
{
    return g_active.load(std::memory_order_acquire);
}

bool
FlightRecorder::dump(const char *reason)
{
    std::string out;
    out.reserve(4096);

    // Header: reason + the series table the sample lines index.
    out += util::sformat("{\"schema\": \"suit-flight-v1\", "
                         "\"reason\": %s",
                         jsonQuote(reason).c_str());
    std::vector<SeriesInfo> series;
    if (sampler_) {
        series = sampler_->series();
        out += util::sformat(", \"interval_s\": %.17g",
                             sampler_->intervalS());
    }
    out += ", \"series\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            out += ", ";
        out += util::sformat("{\"name\": %s, \"kind\": \"%s\"}",
                             jsonQuote(series[i].name).c_str(),
                             toString(series[i].kind));
    }
    out += "]}\n";

    // Ring tail, oldest first.
    if (sampler_) {
        sampler_->lastSamplesInto(sampleScratch_, cfg_.lastSamples);
        for (const TelemetrySample &sample : sampleScratch_) {
            out += util::sformat(
                "{\"sample\": %llu, \"host_us\": %.3f, \"values\": [",
                static_cast<unsigned long long>(sample.id),
                sample.hostUs);
            const std::size_t n =
                std::min(sample.raw.size(), series.size());
            for (std::size_t i = 0; i < n; ++i) {
                if (i)
                    out += ", ";
                if (series[i].kind == MetricKind::Gauge)
                    out += util::sformat(
                        "%.17g",
                        seriesValue(series[i].kind, sample.raw[i]));
                else
                    out += util::sformat(
                        "%llu", static_cast<unsigned long long>(
                                    sample.raw[i]));
            }
            out += "]}\n";
        }
    }

    // Active span stacks, innermost last per thread.
    const int threads =
        std::min(g_spanThreads.load(std::memory_order_relaxed),
                 kMaxSpanThreads);
    for (int t = 0; t < threads; ++t) {
        const ThreadSpans &spans = g_spans[t];
        const std::uint32_t depth = std::min<std::uint32_t>(
            spans.depth.load(std::memory_order_acquire),
            kMaxSpanDepth);
        for (std::uint32_t d = 0; d < depth; ++d) {
            const SpanEntry &entry = spans.entries[d];
            const char *name =
                entry.name.load(std::memory_order_relaxed);
            const char *cat =
                entry.cat.load(std::memory_order_relaxed);
            if (name == nullptr)
                continue; // stack caught mid-push
            out += util::sformat(
                "{\"span_thread\": %d, \"depth\": %u, "
                "\"name\": %s, \"cat\": %s, \"start_us\": %.3f}\n",
                t, d, jsonQuote(name).c_str(),
                jsonQuote(cat ? cat : "").c_str(),
                std::bit_cast<double>(entry.startUsBits.load(
                    std::memory_order_relaxed)));
        }
    }

    std::FILE *f = std::fopen(cfg_.path.c_str(), "w");
    if (f == nullptr) {
        util::warn("flight recorder: cannot write '%s'",
                   cfg_.path.c_str());
        return false;
    }
    const bool wrote =
        std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote) {
        util::warn("flight recorder: short write to '%s'",
                   cfg_.path.c_str());
        return false;
    }
    ++dumps_;
    return true;
}

} // namespace suit::obs
