#include "obs/trace.hh"

#include <cstdio>
#include <utility>

#include "obs/json.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::obs {

namespace {

std::atomic<TraceSession *> g_active{nullptr};

std::string
renderArgs(const TraceArgs &args)
{
    if (args.empty())
        return {};
    std::string out = "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(args[i].key);
        out += ": ";
        out += args[i].json;
    }
    out += "}";
    return out;
}

} // namespace

TraceArg::TraceArg(std::string k, const std::string &value)
    : key(std::move(k)), json(jsonQuote(value))
{
}

TraceArg::TraceArg(std::string k, const char *value)
    : key(std::move(k)), json(jsonQuote(value))
{
}

TraceArg::TraceArg(std::string k, double value)
    : key(std::move(k)), json(util::sformat("%.17g", value))
{
}

TraceArg::TraceArg(std::string k, std::uint64_t value)
    : key(std::move(k)),
      json(util::sformat("%llu",
                         static_cast<unsigned long long>(value)))
{
}

TraceArg::TraceArg(std::string k, std::int64_t value)
    : key(std::move(k)),
      json(util::sformat("%lld", static_cast<long long>(value)))
{
}

TraceArg::TraceArg(std::string k, int value)
    : key(std::move(k)), json(util::sformat("%d", value))
{
}

TraceArg::TraceArg(std::string k, unsigned value)
    : key(std::move(k)), json(util::sformat("%u", value))
{
}

TraceSession::TraceSession() : start_(std::chrono::steady_clock::now())
{
    // Name the two synthetic processes up front so even an
    // otherwise-empty trace renders with labelled timelines.
    Event sim;
    sim.ph = 'M';
    sim.pid = kSimPid;
    sim.name = "process_name";
    sim.argsJson = "{\"name\": \"sim time\"}";
    Event host;
    host.ph = 'M';
    host.pid = kHostPid;
    host.name = "process_name";
    host.argsJson = "{\"name\": \"host\"}";
    std::lock_guard lock(mu_);
    events_.push_back(std::move(sim));
    events_.push_back(std::move(host));
}

int
TraceSession::newTrackLocked(int pid, const std::string &name)
{
    const int tid = ++nextTid_[pid];
    Event meta;
    meta.ph = 'M';
    meta.pid = pid;
    meta.tid = tid;
    meta.name = "thread_name";
    meta.argsJson =
        util::sformat("{\"name\": %s}", jsonQuote(name).c_str());
    if (events_.size() < kMaxEvents)
        events_.push_back(std::move(meta));
    else
        dropped_.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

int
TraceSession::newTrack(int pid, const std::string &name)
{
    std::lock_guard lock(mu_);
    return newTrackLocked(pid, name);
}

int
TraceSession::threadTrack(const std::string &name)
{
    std::lock_guard lock(mu_);
    auto it = hostTracks_.find(std::this_thread::get_id());
    if (it == hostTracks_.end()) {
        const int tid = newTrackLocked(kHostPid, name);
        it = hostTracks_.emplace(std::this_thread::get_id(), tid)
                 .first;
    }
    return it->second;
}

void
TraceSession::push(Event event)
{
    std::lock_guard lock(mu_);
    if (events_.size() >= kMaxEvents) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceSession::begin(int pid, int tid, double ts,
                    const std::string &name, const std::string &cat,
                    const TraceArgs &args)
{
    Event e;
    e.ph = 'B';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
TraceSession::end(int pid, int tid, double ts)
{
    Event e;
    e.ph = 'E';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    push(std::move(e));
}

void
TraceSession::complete(int pid, int tid, double ts, double dur,
                       const std::string &name, const std::string &cat,
                       const TraceArgs &args)
{
    Event e;
    e.ph = 'X';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
TraceSession::instant(int pid, int tid, double ts,
                      const std::string &name, const std::string &cat,
                      const TraceArgs &args)
{
    Event e;
    e.ph = 'i';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.cat = cat;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

void
TraceSession::counter(int pid, int tid, double ts,
                      const std::string &name, const TraceArgs &args)
{
    Event e;
    e.ph = 'C';
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.name = name;
    e.argsJson = renderArgs(args);
    push(std::move(e));
}

double
TraceSession::hostNowUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::size_t
TraceSession::eventCount() const
{
    std::lock_guard lock(mu_);
    return events_.size();
}

std::uint64_t
TraceSession::dropped() const
{
    return dropped_.load(std::memory_order_relaxed);
}

std::string
TraceSession::render() const
{
    std::lock_guard lock(mu_);
    std::string out;
    // ~160 bytes per rendered event is a good reserve estimate.
    out.reserve(events_.size() * 160 + 64);
    out += "{\n\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        out += util::sformat("{\"ph\": \"%c\", \"pid\": %d, "
                             "\"tid\": %d, \"ts\": %.3f",
                             e.ph, e.pid, e.tid, e.ts);
        if (e.ph == 'X')
            out += util::sformat(", \"dur\": %.3f", e.dur);
        if (e.ph == 'i')
            out += ", \"s\": \"t\"";
        if (!e.name.empty()) {
            out += ", \"name\": ";
            out += jsonQuote(e.name);
        }
        if (!e.cat.empty()) {
            out += ", \"cat\": ";
            out += jsonQuote(e.cat);
        }
        if (!e.argsJson.empty()) {
            out += ", \"args\": ";
            out += e.argsJson;
        }
        out += "}";
        if (i + 1 < events_.size())
            out += ",";
        out += "\n";
    }
    out += "],\n\"displayTimeUnit\": \"ms\"\n}\n";
    return out;
}

bool
TraceSession::writeTo(const std::string &path) const
{
    const std::string doc = render();
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        util::warn("cannot write trace to '%s'", path.c_str());
        return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (const std::uint64_t n = dropped()) {
        util::warn("trace '%s' dropped %llu events past the %zu-event "
                   "cap",
                   path.c_str(), static_cast<unsigned long long>(n),
                   kMaxEvents);
    }
    return true;
}

TraceSession *
activeTrace()
{
    return g_active.load(std::memory_order_acquire);
}

void
setActiveTrace(TraceSession *session)
{
    g_active.store(session, std::memory_order_release);
}

} // namespace suit::obs
