#include "obs/setup.hh"

#include <chrono>
#include <cstdio>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace suit::obs {

void
addCliOptions(util::ArgParser &args)
{
    args.addOption("metrics", "",
                   "write the metrics registry as JSON to this path "
                   "('-' for stdout)");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event timeline to this path "
                   "('-' for stdout)");
    args.addOption("obs-level", "auto",
                   "observability level: off, metrics, full, or auto "
                   "(derive from --metrics/--trace-out)");
    args.addOption("metrics-interval", "0",
                   "dump the metrics registry every N seconds while "
                   "running (0 = only at exit); implies --obs-level "
                   "metrics");
}

CliScope::CliScope(const util::ArgParser &args)
    : metricsPath_(args.get("metrics")),
      tracePath_(args.get("trace-out"))
{
    const std::string &level = args.get("obs-level");
    if (level == "off") {
        level_ = Level::Off;
    } else if (level == "metrics") {
        level_ = Level::Metrics;
    } else if (level == "full") {
        level_ = Level::Full;
    } else if (level == "auto") {
        if (!tracePath_.empty())
            level_ = Level::Full;
        else if (!metricsPath_.empty())
            level_ = Level::Metrics;
        else
            level_ = Level::Off;
    } else {
        util::fatal("bad --obs-level '%s' (want off, metrics, full "
                    "or auto)",
                    level.c_str());
    }
    if (!tracePath_.empty() && level_ != Level::Full) {
        util::warn("--trace-out ignored at --obs-level %s",
                   level.c_str());
        tracePath_.clear();
    }

    const std::string &interval = args.get("metrics-interval");
    if (util::tryParseDouble(interval, metricsIntervalS_) !=
            util::ParseStatus::Ok ||
        metricsIntervalS_ < 0.0) {
        util::fatal("bad --metrics-interval '%s' (want seconds "
                    ">= 0)",
                    interval.c_str());
    }
    if (metricsIntervalS_ > 0.0 && level_ == Level::Off)
        level_ = Level::Metrics;

    metrics().setEnabled(level_ != Level::Off);
    if (level_ == Level::Full) {
        trace_ = std::make_unique<TraceSession>();
        setActiveTrace(trace_.get());
    }

    if (metricsIntervalS_ > 0.0) {
        dumper_ = std::thread([this] {
            const auto interval_ms =
                std::chrono::milliseconds(static_cast<long long>(
                    metricsIntervalS_ * 1e3));
            std::unique_lock lock(dumperMu_);
            while (!dumperStop_) {
                if (dumperCv_.wait_for(lock, interval_ms, [this] {
                        return dumperStop_;
                    }))
                    break;
                lock.unlock();
                dumpMetrics();
                lock.lock();
            }
        });
    }
}

CliScope::~CliScope()
{
    finish();
}

void
CliScope::dumpMetrics() const
{
    const std::string doc = metrics().renderJson();
    if (metricsPath_.empty()) {
        const std::string table = metrics().renderTable();
        std::fwrite(table.data(), 1, table.size(), stderr);
        return;
    }
    if (metricsPath_ == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return;
    }
    // Atomic replace: a concurrent reader (a dashboard tailing the
    // file while the tool runs) sees either the old or the new
    // document, never a torn one.
    const std::string tmp = metricsPath_ + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        util::warn("cannot write metrics to '%s'", tmp.c_str());
        return;
    }
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote ||
        std::rename(tmp.c_str(), metricsPath_.c_str()) != 0)
        util::warn("cannot write metrics to '%s'",
                   metricsPath_.c_str());
}

void
CliScope::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (dumper_.joinable()) {
        {
            std::lock_guard lock(dumperMu_);
            dumperStop_ = true;
        }
        dumperCv_.notify_all();
        dumper_.join();
    }

    if (trace_)
        setActiveTrace(nullptr);

    if (!metricsPath_.empty() && metricsEnabled())
        dumpMetrics();
    if (trace_ && !tracePath_.empty())
        trace_->writeTo(tracePath_);

    metrics().setEnabled(false);
}

} // namespace suit::obs
