#include "obs/setup.hh"

#include <chrono>
#include <cstdio>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace suit::obs {

void
addCliOptions(util::ArgParser &args)
{
    args.addOption("metrics", "",
                   "write the metrics registry as JSON to this path "
                   "('-' for stdout)");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event timeline to this path "
                   "('-' for stdout)");
    args.addOption("obs-level", "auto",
                   "observability level: off, metrics, full, or auto "
                   "(derive from --metrics/--trace-out)");
    args.addOption("metrics-interval", "0",
                   "dump the metrics registry every N seconds while "
                   "running (0 = only at exit); implies --obs-level "
                   "metrics");
    args.addOption("listen-metrics", "0",
                   "serve OpenMetrics text on 127.0.0.1:PORT while "
                   "running (0 = off; implies --obs-level metrics)");
    args.addOption("metrics-series", "",
                   "write the final OpenMetrics snapshot to this "
                   "path at exit (file exposition for headless CI; "
                   "implies --obs-level metrics)");
    args.addOption("flight-recorder", "",
                   "on crash, Ctrl-C or --deadline-s expiry dump the "
                   "last telemetry samples + active spans to this "
                   "JSONL path (implies --obs-level metrics)");
    args.addOption("sample-interval-ms", "100",
                   "telemetry sampler period in milliseconds "
                   "(used by --listen-metrics/--metrics-series/"
                   "--flight-recorder)");
}

CliScope::CliScope(const util::ArgParser &args)
    : metricsPath_(args.get("metrics")),
      tracePath_(args.get("trace-out"))
{
    const std::string &level = args.get("obs-level");
    if (level == "off") {
        level_ = Level::Off;
    } else if (level == "metrics") {
        level_ = Level::Metrics;
    } else if (level == "full") {
        level_ = Level::Full;
    } else if (level == "auto") {
        if (!tracePath_.empty())
            level_ = Level::Full;
        else if (!metricsPath_.empty())
            level_ = Level::Metrics;
        else
            level_ = Level::Off;
    } else {
        util::fatal("bad --obs-level '%s' (want off, metrics, full "
                    "or auto)",
                    level.c_str());
    }
    if (!tracePath_.empty() && level_ != Level::Full) {
        util::warn("--trace-out ignored at --obs-level %s",
                   level.c_str());
        tracePath_.clear();
    }

    const std::string &interval = args.get("metrics-interval");
    if (util::tryParseDouble(interval, metricsIntervalS_) !=
            util::ParseStatus::Ok ||
        metricsIntervalS_ < 0.0) {
        util::fatal("bad --metrics-interval '%s' (want seconds "
                    ">= 0)",
                    interval.c_str());
    }
    listenPort_ = static_cast<std::uint16_t>(
        args.getIntInRange("listen-metrics", 0, 65535));
    seriesPath_ = args.get("metrics-series");
    flightPath_ = args.get("flight-recorder");
    const std::string &sampleMs = args.get("sample-interval-ms");
    if (util::tryParseDouble(sampleMs, sampleIntervalMs_) !=
            util::ParseStatus::Ok ||
        sampleIntervalMs_ <= 0.0) {
        util::fatal("bad --sample-interval-ms '%s' (want ms > 0)",
                    sampleMs.c_str());
    }

    if (metricsIntervalS_ > 0.0 && level_ == Level::Off)
        level_ = Level::Metrics;
    if (telemetryConfig().enabled && level_ == Level::Off)
        level_ = Level::Metrics;

    // Arm the flight recorder immediately (sampler-less: header and
    // span stacks only) so crash coverage starts before the Session
    // exists; attachTelemetry() re-arms it against the ring.
    if (!flightPath_.empty())
        flight_ = std::make_unique<FlightRecorder>(
            FlightConfig{flightPath_});

    metrics().setEnabled(level_ != Level::Off);
    if (level_ == Level::Full) {
        trace_ = std::make_unique<TraceSession>();
        setActiveTrace(trace_.get());
    }

    if (metricsIntervalS_ > 0.0) {
        dumper_ = std::thread([this] {
            const auto interval_ms =
                std::chrono::milliseconds(static_cast<long long>(
                    metricsIntervalS_ * 1e3));
            std::unique_lock lock(dumperMu_);
            while (!dumperStop_) {
                if (dumperCv_.wait_for(lock, interval_ms, [this] {
                        return dumperStop_;
                    }))
                    break;
                lock.unlock();
                dumpMetrics();
                lock.lock();
            }
        });
    }
}

CliScope::~CliScope()
{
    finish();
}

namespace {

/**
 * Atomic replace: a concurrent reader (a dashboard tailing the file
 * while the tool runs) sees either the old or the new document,
 * never a torn one.
 */
void
writeFileAtomic(const std::string &path, const std::string &doc)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        util::warn("cannot write metrics to '%s'", tmp.c_str());
        return;
    }
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fflush(f) == 0;
    std::fclose(f);
    if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0)
        util::warn("cannot write metrics to '%s'", path.c_str());
}

} // namespace

TelemetryConfig
CliScope::telemetryConfig() const
{
    TelemetryConfig cfg;
    cfg.enabled = listenPort_ != 0 || !seriesPath_.empty() ||
                  !flightPath_.empty();
    cfg.intervalS = sampleIntervalMs_ / 1e3;
    return cfg;
}

void
CliScope::attachTelemetry(std::shared_ptr<TelemetrySampler> sampler)
{
    if (!sampler)
        return;
    {
        std::lock_guard lock(samplerMu_);
        sampler_ = sampler;
    }
    if (!flightPath_.empty()) {
        flight_.reset(); // re-arm against the ring
        flight_ = std::make_unique<FlightRecorder>(
            FlightConfig{flightPath_}, sampler);
    }
    if (listenPort_ != 0 && !server_) {
        // Scrape-triggered sampling: every scrape refreshes the
        // retained snapshot before rendering, like a Prometheus
        // collect callback.
        server_ = std::make_unique<MetricsServer>(
            listenPort_, [sampler] {
                sampler->sampleOnce();
                return sampler->renderOpenMetricsText();
            });
        if (server_->ok())
            util::inform("serving OpenMetrics on 127.0.0.1:%u",
                         static_cast<unsigned>(server_->port()));
    }
}

void
CliScope::startLocalTelemetry()
{
    const TelemetryConfig cfg = telemetryConfig();
    if (!cfg.enabled || telemetry())
        return;
    auto sampler = std::make_shared<TelemetrySampler>(metrics(), cfg);
    sampler->start();
    ownsSampler_ = true;
    attachTelemetry(std::move(sampler));
}

void
CliScope::noteInterruption(const char *reason)
{
    if (auto sampler = telemetry())
        sampler->sampleOnce(); // capture the end state in the ring
    if (flight_)
        flight_->dump(reason);
}

void
CliScope::dumpMetrics() const
{
    // Reuse the sampler's retained snapshot when one is attached:
    // periodic dumps then cost one render, not a walk over every
    // registry shard per interval.
    const auto sampler = telemetry();
    const bool sampled = sampler && sampler->samplesTaken() > 0;
    const std::string doc =
        sampled ? sampler->renderLatestJson() : metrics().renderJson();
    if (metricsPath_.empty()) {
        const std::string table = metrics().renderTable();
        std::fwrite(table.data(), 1, table.size(), stderr);
        return;
    }
    if (metricsPath_ == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        return;
    }
    writeFileAtomic(metricsPath_, doc);
}

void
CliScope::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (dumper_.joinable()) {
        {
            std::lock_guard lock(dumperMu_);
            dumperStop_ = true;
        }
        dumperCv_.notify_all();
        dumper_.join();
    }

    // Quiesce the scrape endpoint, then take one final sample so the
    // retained snapshot (and the ring tail) reflects the end state.
    if (server_)
        server_->stop();
    const auto sampler = telemetry();
    if (sampler) {
        if (ownsSampler_)
            sampler->stop();
        sampler->sampleOnce();
    }

    if (trace_)
        setActiveTrace(nullptr);

    if (!metricsPath_.empty() && metricsEnabled())
        dumpMetrics();
    if (!seriesPath_.empty() && !sampler)
        util::warn("--metrics-series: no telemetry sampler was "
                   "attached; nothing written");
    if (!seriesPath_.empty() && sampler) {
        if (seriesPath_ == "-") {
            const std::string doc =
                sampler->renderOpenMetricsText();
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            writeFileAtomic(seriesPath_,
                            sampler->renderOpenMetricsText());
        }
    }
    if (trace_ && !tracePath_.empty())
        trace_->writeTo(tracePath_);

    metrics().setEnabled(false);
}

} // namespace suit::obs
