#include "obs/setup.hh"

#include <cstdio>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace suit::obs {

void
addCliOptions(util::ArgParser &args)
{
    args.addOption("metrics", "",
                   "write the metrics registry as JSON to this path "
                   "('-' for stdout)");
    args.addOption("trace-out", "",
                   "write a Chrome trace_event timeline to this path "
                   "('-' for stdout)");
    args.addOption("obs-level", "auto",
                   "observability level: off, metrics, full, or auto "
                   "(derive from --metrics/--trace-out)");
}

CliScope::CliScope(const util::ArgParser &args)
    : metricsPath_(args.get("metrics")),
      tracePath_(args.get("trace-out"))
{
    const std::string &level = args.get("obs-level");
    if (level == "off") {
        level_ = Level::Off;
    } else if (level == "metrics") {
        level_ = Level::Metrics;
    } else if (level == "full") {
        level_ = Level::Full;
    } else if (level == "auto") {
        if (!tracePath_.empty())
            level_ = Level::Full;
        else if (!metricsPath_.empty())
            level_ = Level::Metrics;
        else
            level_ = Level::Off;
    } else {
        util::fatal("bad --obs-level '%s' (want off, metrics, full "
                    "or auto)",
                    level.c_str());
    }
    if (!tracePath_.empty() && level_ != Level::Full) {
        util::warn("--trace-out ignored at --obs-level %s",
                   level.c_str());
        tracePath_.clear();
    }

    metrics().setEnabled(level_ != Level::Off);
    if (level_ == Level::Full) {
        trace_ = std::make_unique<TraceSession>();
        setActiveTrace(trace_.get());
    }
}

CliScope::~CliScope()
{
    finish();
}

void
CliScope::finish()
{
    if (finished_)
        return;
    finished_ = true;

    if (trace_)
        setActiveTrace(nullptr);

    if (!metricsPath_.empty() && metricsEnabled()) {
        const std::string doc = metrics().renderJson();
        if (metricsPath_ == "-") {
            std::fwrite(doc.data(), 1, doc.size(), stdout);
        } else {
            std::FILE *f = std::fopen(metricsPath_.c_str(), "w");
            if (!f) {
                util::warn("cannot write metrics to '%s'",
                           metricsPath_.c_str());
            } else {
                std::fwrite(doc.data(), 1, doc.size(), f);
                std::fclose(f);
            }
        }
    }
    if (trace_ && !tracePath_.empty())
        trace_->writeTo(tracePath_);

    metrics().setEnabled(false);
}

} // namespace suit::obs
