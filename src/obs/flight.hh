/**
 * @file
 * FlightRecorder: JSONL post-mortem dumps of the telemetry ring and
 * the active span stacks.
 *
 * A FlightRecorder is armed by `--flight-recorder PATH`.  When the
 * run ends abnormally — a crash signal, Ctrl-C, or `--deadline-s`
 * expiry — dump() writes a small JSONL document:
 *
 *   {"schema":"suit-flight-v1","reason":...,"series":[{name,kind}..]}
 *   {"sample":<id>,"host_us":...,"values":[...]}      (oldest first)
 *   {"span_thread":T,"depth":D,"name":...,"cat":...,"start_us":...}
 *
 * Sample values follow the telemetry ring convention: counters and
 * histograms are cumulative totals (so a validator can check they
 * never decrease), gauges are plain doubles.
 *
 * The span stack is the lightweight always-cheap sibling of the
 * Chrome trace: FlightSpan is an RAII guard over a global fixed
 * table of per-thread stacks (atomic name/cat/start words, atomic
 * depth), recording only while a recorder is armed — one relaxed
 * load and a branch otherwise.  Names and categories must be string
 * literals (the table stores the pointers).
 *
 * Crash-signal dumps are best-effort: the handler renders with the
 * normal (allocating) path, which is not async-signal-safe in
 * general but recovers the ring in the overwhelmingly common case —
 * the alternative on a crash is nothing at all.  Cancellation and
 * deadline dumps run in normal context and are fully defined.
 */

#ifndef SUIT_OBS_FLIGHT_HH
#define SUIT_OBS_FLIGHT_HH

#include <cstddef>
#include <memory>
#include <string>

#include "obs/telemetry.hh"

namespace suit::obs {

/** Where and how much the flight recorder dumps. */
struct FlightConfig
{
    /** Output path; empty disables the recorder. */
    std::string path;
    /** Ring samples to include (most recent N). */
    std::size_t lastSamples = 64;
    /** Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE dump handlers. */
    bool installSignalHandlers = true;
};

/** Armed post-mortem dumper; see the file comment. */
class FlightRecorder
{
  public:
    /**
     * Arm the recorder.  @p sampler provides the ring (may be null:
     * the dump then carries only the header and span stacks).  At
     * most one recorder is active at a time (the newest wins).
     */
    explicit FlightRecorder(
        FlightConfig config,
        std::shared_ptr<TelemetrySampler> sampler = nullptr);

    /** Disarms (restores signal handlers installed by this one). */
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Write the post-mortem document now, tagged with @p reason
     * ("sigint", "deadline", "cancelled", "crash-signal", ...).
     * Later dumps replace earlier ones.  @return false (with a
     * warning) when the file cannot be written.
     */
    bool dump(const char *reason);

    /** Dumps written so far. */
    std::uint64_t dumps() const { return dumps_; }

    const FlightConfig &config() const { return cfg_; }

    /** The armed recorder, or null. */
    static FlightRecorder *active();

  private:
    FlightConfig cfg_;
    std::shared_ptr<TelemetrySampler> sampler_;
    std::uint64_t dumps_ = 0;
    bool installedHandlers_ = false;
    FlightRecorder *previous_ = nullptr;
    // Reused across dumps so repeated dumps don't regrow buffers.
    std::vector<TelemetrySample> sampleScratch_;
};

/**
 * RAII span marker for flight-recorder stack dumps.  @p name and
 * @p cat must be string literals (static storage); recording is a
 * no-op unless a FlightRecorder is armed.
 */
class FlightSpan
{
  public:
    FlightSpan(const char *name, const char *cat);
    ~FlightSpan();

    FlightSpan(const FlightSpan &) = delete;
    FlightSpan &operator=(const FlightSpan &) = delete;

  private:
    int slot_ = -1; //!< thread-table slot; -1 = not recorded
};

/** True while a FlightRecorder is armed (spans are recording). */
bool flightSpansActive();

} // namespace suit::obs

#endif // SUIT_OBS_FLIGHT_HH
