/**
 * @file
 * Continuous telemetry: a background sampler over the metrics
 * registry and a fixed-capacity lock-free time-series ring.
 *
 * A TelemetrySampler periodically snapshots a Registry and appends
 * one sample — every metric's scalar projection plus a monotonic
 * sample id and a host timestamp — to a ring of seqlock slots.
 * Readers (the OpenMetrics exposition server, the flight recorder,
 * the CLI series dump) are lock-free with respect to the sampler:
 * they re-read a slot whose sequence number changed underfoot and
 * skip slots that were overwritten mid-scan.  All slot payload words
 * are relaxed atomics under the per-slot sequence protocol, so the
 * ring is data-race-free by construction (and TSan-clean), not just
 * by fences.
 *
 * Memory-ordering contract (the classic atomic seqlock):
 *
 *   writer: seq.store(odd, relaxed); fence(release);
 *           payload stores (relaxed);
 *           seq.store(even, release);
 *   reader: s1 = seq.load(acquire); payload loads (relaxed);
 *           fence(acquire); s2 = seq.load(relaxed);
 *           valid iff s1 == s2 and s1 is even.
 *
 * Steady state allocates nothing: the ring is sized at construction,
 * the registry is re-read through Registry::snapshotInto() into a
 * pair of reused Snapshot buffers (front = latest published, back =
 * scratch), and the series table only grows when a *new* metric
 * registers — which the registry treats as a rare, mutex-protected
 * event anyway.
 *
 * The retained front Snapshot is what makes `--metrics-interval`
 * cheap: periodic dumps render the sampler's latest snapshot instead
 * of re-walking every registry shard per interval.
 */

#ifndef SUIT_OBS_TELEMETRY_HH
#define SUIT_OBS_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hh"

namespace suit::obs {

/** How a Session's telemetry sampler should run. */
struct TelemetryConfig
{
    /** Master switch; a disabled config creates no sampler. */
    bool enabled = false;
    /** Sampling period in seconds (--sample-interval-ms / 1e3). */
    double intervalS = 0.1;
    /** Ring capacity in samples; fixed once constructed. */
    std::size_t ringCapacity = 256;
};

/** Identity of one ring series (a metric's scalar projection). */
struct SeriesInfo
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
};

/**
 * One decoded ring sample.  raw[i] belongs to series i: counters and
 * histograms store their cumulative total (deltas are differences of
 * consecutive samples), gauges store the double's bit pattern
 * (decode with seriesValue()).
 */
struct TelemetrySample
{
    std::uint64_t id = 0;  //!< monotonic, 1-based
    double hostUs = 0.0;   //!< microseconds since sampler creation
    std::vector<std::uint64_t> raw;
};

/** raw word of series @p kind as a double (bit-cast for gauges). */
double seriesValue(MetricKind kind, std::uint64_t raw);

/** Periodic registry sampler; see the file comment. */
class TelemetrySampler
{
  public:
    /** Series beyond this many are dropped (seriesDropped()). */
    static constexpr std::size_t kMaxSeries = 256;

    /** Bind to @p registry; the ring is sized from @p config. */
    explicit TelemetrySampler(Registry &registry,
                              TelemetryConfig config = {});

    /** Stops the background thread. */
    ~TelemetrySampler();

    TelemetrySampler(const TelemetrySampler &) = delete;
    TelemetrySampler &operator=(const TelemetrySampler &) = delete;

    /** @{ Background thread lifecycle; both are idempotent. */
    void start();
    void stop();
    bool running() const;
    /** @} */

    /**
     * Take one sample now (any thread; writers are serialised
     * internally).  Returns the new sample id.
     */
    std::uint64_t sampleOnce();

    /** Samples taken so far (== the latest sample id). */
    std::uint64_t samplesTaken() const;

    /** Ring capacity in samples. */
    std::size_t ringCapacity() const { return capacity_; }

    /** Sampling period in seconds. */
    double intervalS() const { return cfg_.intervalS; }

    /** Metrics that could not fit in kMaxSeries ring series. */
    std::uint64_t seriesDropped() const;

    /** Copy of the series table (index = ring series id). */
    std::vector<SeriesInfo> series() const;

    /**
     * Decode up to the last @p n samples into @p out, oldest first.
     * Reuses @p out's capacity; slots overwritten mid-scan are
     * skipped.  Returns the number of samples written.
     */
    std::size_t lastSamplesInto(std::vector<TelemetrySample> &out,
                                std::size_t n) const;

    /** Convenience allocating wrapper around lastSamplesInto(). */
    std::vector<TelemetrySample> lastSamples(std::size_t n) const;

    /**
     * Copy of the most recent full registry snapshot (empty before
     * the first sample).
     */
    Snapshot latestSnapshot() const;

    /**
     * Render the latest snapshot as the suit-obs-metrics-v1 JSON
     * document — byte-identical to Registry::renderJson() when the
     * registry is quiescent.  This is the `--metrics-interval` dump
     * path: no registry shard walk.
     */
    std::string renderLatestJson() const;

    /** Render the latest snapshot as OpenMetrics text. */
    std::string renderOpenMetricsText() const;

  private:
    void samplerMain();
    void refreshSeriesLocked(const Snapshot &snap);

    Registry &reg_;
    const TelemetryConfig cfg_;
    const std::size_t capacity_;

    // Ring storage: flat per-slot arrays of atomics, fixed at
    // construction.  values_ is capacity_ * kMaxSeries words.
    std::unique_ptr<std::atomic<std::uint64_t>[]> seq_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> ids_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> hostUsBits_;
    std::unique_ptr<std::atomic<std::uint32_t>[]> counts_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> values_;

    std::atomic<std::uint64_t> lastId_{0};
    std::atomic<std::uint64_t> seriesDropped_{0};

    // Series table: append-only, mutex-protected (rare growth).
    mutable std::mutex seriesMu_;
    std::vector<SeriesInfo> series_;
    std::atomic<std::uint32_t> seriesCount_{0};

    // Writer serialisation + the reused snapshot double buffer.
    std::mutex sampleMu_;
    mutable std::mutex snapMu_;
    Snapshot front_; //!< latest published snapshot
    Snapshot back_;  //!< sampler scratch

    const std::chrono::steady_clock::time_point start_;

    // Background thread.
    std::thread thread_;
    mutable std::mutex threadMu_;
    std::condition_variable threadCv_;
    bool threadStop_ = false;
};

} // namespace suit::obs

#endif // SUIT_OBS_TELEMETRY_HH
