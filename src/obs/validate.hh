/**
 * @file
 * Structural validators for the obs exporters' JSON documents.
 *
 * The exporters emit one event/metric object per line precisely so
 * these checks (and the CI smoke scripts through suit_obs_check) can
 * validate the output without a JSON parser dependency: each line is
 * scanned for its required keys, span begin/end events are checked
 * for balance per track, and the distinct names are collected so
 * callers can assert that specific events ("pstate", "do-trap", ...)
 * actually made it into the file.
 */

#ifndef SUIT_OBS_VALIDATE_HH
#define SUIT_OBS_VALIDATE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace suit::obs {

/** Outcome of a document validation. */
struct CheckResult
{
    bool ok = false;
    /** First structural problem found (empty when ok). */
    std::string error;
    /** Event or metric objects seen. */
    std::size_t entries = 0;
    /** Distinct event/metric names, in first-seen order. */
    std::vector<std::string> names;

    /** True if @p name is among names. */
    bool hasName(const std::string &name) const;
};

/**
 * Validate a Chrome trace_event document as written by
 * TraceSession::render(): a "traceEvents" array whose events each
 * carry ph/pid/tid (and ts for non-metadata phases), with only known
 * phase codes and balanced B/E pairs on every (pid, tid) track.
 */
CheckResult checkChromeTrace(const std::string &doc);

/**
 * Validate a metrics document as written by Registry::renderJson():
 * schema "suit-obs-metrics-v1", each metric carrying name and a known
 * kind, counters/histograms a count, histograms bounds plus exactly
 * bounds+1 buckets.
 */
CheckResult checkMetricsJson(const std::string &doc);

/**
 * Validate an OpenMetrics text document as written by
 * renderOpenMetrics(): well-formed metric names, every sample value
 * parseable, every sample family announced by a preceding `# TYPE`
 * line, no duplicate (metric, label-set) sample lines, histogram
 * `le` buckets cumulative (non-decreasing counts), and a final
 * `# EOF` marker.  names collects the exposed families.
 */
CheckResult checkOpenMetrics(const std::string &doc);

/**
 * Validate a flight-recorder JSONL document as written by
 * FlightRecorder::dump(): a "suit-flight-v1" header carrying reason
 * and a duplicate-free series table, sample lines with strictly
 * increasing ids, non-decreasing host timestamps, at most
 * series-count values and counter/histogram series non-decreasing
 * across samples, span lines with thread/name fields.  names
 * collects series then span names.
 */
CheckResult checkFlightJsonl(const std::string &doc);

} // namespace suit::obs

#endif // SUIT_OBS_VALIDATE_HH
