/**
 * @file
 * OpenMetrics/Prometheus text exposition for the metrics registry.
 *
 * renderOpenMetrics() turns a Snapshot into the Prometheus text
 * format: internal dotted metric names are sanitised to
 * `suit_<name_with_underscores>`, counters expose as `<name>_total`,
 * gauges as `<name>`, histograms as the cumulative
 * `<name>_bucket{le="..."}` series plus `<name>_count`, and the
 * document terminates with `# EOF` so scrapers can detect
 * truncation.
 *
 * MetricsServer is the minimal blocking exposition endpoint behind
 * `--listen-metrics PORT`: one background thread, an AF_INET
 * listener on 127.0.0.1, a single-threaded accept loop that answers
 * every request with the render callback's current document over
 * HTTP/1.0 and closes.  Port 0 binds an ephemeral port (port()
 * reports the bound one) so tests never collide.  For headless CI
 * the same document is written to a file via `--metrics-series`
 * instead — no socket needed.
 */

#ifndef SUIT_OBS_OPENMETRICS_HH
#define SUIT_OBS_OPENMETRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/registry.hh"

namespace suit::obs {

/**
 * Sanitise an internal metric name for exposition: every character
 * outside [a-zA-Z0-9_] becomes '_' and the result is prefixed with
 * "suit_" ("fleet.domains.simulated" -> "suit_fleet_domains_simulated").
 */
std::string openMetricsName(const std::string &name);

/** Render @p snap as OpenMetrics text (terminated by "# EOF"). */
std::string renderOpenMetrics(const Snapshot &snap);

/** Blocking single-threaded exposition server; see file comment. */
class MetricsServer
{
  public:
    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * loop; every scrape answers with @p render().  On bind failure
     * ok() is false (with a warning) and no thread runs.
     */
    MetricsServer(std::uint16_t port,
                  std::function<std::string()> render);

    /** Stops the accept loop and closes the listener. */
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /** True when the listener bound and the loop is serving. */
    bool ok() const { return listenFd_ >= 0; }

    /** The bound port (the requested one unless it was 0). */
    std::uint16_t port() const { return port_; }

    /** Scrapes answered so far. */
    std::uint64_t scrapes() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

    /** Stop serving (idempotent; also called by the destructor). */
    void stop();

  private:
    void serve();

    std::function<std::string()> render_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::thread thread_;
};

} // namespace suit::obs

#endif // SUIT_OBS_OPENMETRICS_HH
