/**
 * @file
 * One-stop observability wiring for the CLI tools.
 *
 * Every instrumented binary adds the same three options and
 * constructs one CliScope around its run:
 *
 *   --metrics <path|->        write the metrics registry as JSON
 *   --trace-out <path|->      write a Chrome trace_event timeline
 *   --obs-level <level>       off | metrics | full | auto
 *   --metrics-interval <s>    also dump the registry every s seconds
 *
 * "auto" (the default) derives the level from the other two flags:
 * off unless --metrics or --trace-out was given, full when
 * --trace-out was.  The scope enables obs::metrics(), installs its
 * TraceSession as the active trace, and on finish()/destruction
 * writes both outputs and tears the wiring back down.
 *
 * --metrics-interval starts a background dumper thread for
 * long-running tools (suit_sweep, suit_fleet): every interval it
 * snapshots the registry — to the --metrics path via an atomic
 * temp-file + rename (so a concurrent reader never sees a torn
 * JSON document), or as a table to stderr when no path was given.
 * A non-zero interval implies at least Level::Metrics.
 *
 * Declare the CliScope *before* any thread pool or engine whose
 * workers may emit events, so the session outlives every emitter.
 */

#ifndef SUIT_OBS_SETUP_HH
#define SUIT_OBS_SETUP_HH

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.hh"
#include "util/args.hh"

namespace suit::obs {

/** What the CLI asked the obs layer to record. */
enum class Level
{
    Off,     //!< nothing recorded
    Metrics, //!< registry counters only
    Full,    //!< registry counters + trace events
};

/** Declare --metrics, --trace-out and --obs-level on @p args. */
void addCliOptions(util::ArgParser &args);

/** RAII wiring of the obs flags; see the file comment. */
class CliScope
{
  public:
    /**
     * Read the obs flags from parsed @p args and wire the registry
     * and (for Level::Full) the active trace session accordingly.
     * fatal()s on a bad --obs-level value.
     */
    explicit CliScope(const util::ArgParser &args);

    /** Calls finish(). */
    ~CliScope();

    CliScope(const CliScope &) = delete;
    CliScope &operator=(const CliScope &) = delete;

    /** Effective level after resolving "auto". */
    Level level() const { return level_; }

    /** True when the registry is recording. */
    bool metricsEnabled() const { return level_ != Level::Off; }

    /** The trace session, or null below Level::Full. */
    TraceSession *trace() { return trace_.get(); }

    /**
     * Write --metrics and --trace-out outputs, uninstall the active
     * trace and disable the registry.  Idempotent; called by the
     * destructor, but call it explicitly when output ordering
     * relative to other footers matters.
     */
    void finish();

  private:
    /** One periodic dump (and the final write path of finish()). */
    void dumpMetrics() const;

    Level level_ = Level::Off;
    std::string metricsPath_;
    std::string tracePath_;
    double metricsIntervalS_ = 0.0;
    std::unique_ptr<TraceSession> trace_;
    bool finished_ = false;

    // Background dumper (only when --metrics-interval > 0).
    std::thread dumper_;
    std::mutex dumperMu_;
    std::condition_variable dumperCv_;
    bool dumperStop_ = false;
};

} // namespace suit::obs

#endif // SUIT_OBS_SETUP_HH
