/**
 * @file
 * One-stop observability wiring for the CLI tools.
 *
 * Every instrumented binary adds the same three options and
 * constructs one CliScope around its run:
 *
 *   --metrics <path|->        write the metrics registry as JSON
 *   --trace-out <path|->      write a Chrome trace_event timeline
 *   --obs-level <level>       off | metrics | full | auto
 *   --metrics-interval <s>    also dump the registry every s seconds
 *   --listen-metrics <port>   serve OpenMetrics on 127.0.0.1:port
 *   --metrics-series <path>   write the final OpenMetrics snapshot
 *   --flight-recorder <path>  arm the JSONL post-mortem dumper
 *   --sample-interval-ms <ms> telemetry sampler period (default 100)
 *
 * "auto" (the default) derives the level from the other two flags:
 * off unless --metrics or --trace-out was given, full when
 * --trace-out was.  The scope enables obs::metrics(), installs its
 * TraceSession as the active trace, and on finish()/destruction
 * writes both outputs and tears the wiring back down.
 *
 * --metrics-interval starts a background dumper thread for
 * long-running tools (suit_sweep, suit_fleet): every interval it
 * snapshots the registry — to the --metrics path via an atomic
 * temp-file + rename (so a concurrent reader never sees a torn
 * JSON document), or as a table to stderr when no path was given.
 * A non-zero interval implies at least Level::Metrics, as do the
 * three telemetry flags.
 *
 * The telemetry flags need a TelemetrySampler.  The sampler is owned
 * by runtime::Session (it is per-process execution state, like the
 * thread pool): CLIs pass telemetryConfig() into their
 * SessionConfig and hand the resulting sampler back via
 * attachTelemetry(), which starts the exposition server and arms the
 * flight recorder.  Tools without a Session call
 * startLocalTelemetry() instead and the scope owns the sampler
 * itself.  The shared_ptr matters: the scope outlives the Session
 * (it is declared first), so it keeps the ring alive for the final
 * --metrics-series write after the Session stopped the thread.
 *
 * Declare the CliScope *before* any thread pool or engine whose
 * workers may emit events, so the session outlives every emitter.
 */

#ifndef SUIT_OBS_SETUP_HH
#define SUIT_OBS_SETUP_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/flight.hh"
#include "obs/openmetrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/args.hh"

namespace suit::obs {

/** What the CLI asked the obs layer to record. */
enum class Level
{
    Off,     //!< nothing recorded
    Metrics, //!< registry counters only
    Full,    //!< registry counters + trace events
};

/** Declare --metrics, --trace-out and --obs-level on @p args. */
void addCliOptions(util::ArgParser &args);

/** RAII wiring of the obs flags; see the file comment. */
class CliScope
{
  public:
    /**
     * Read the obs flags from parsed @p args and wire the registry
     * and (for Level::Full) the active trace session accordingly.
     * fatal()s on a bad --obs-level value.
     */
    explicit CliScope(const util::ArgParser &args);

    /** Calls finish(). */
    ~CliScope();

    CliScope(const CliScope &) = delete;
    CliScope &operator=(const CliScope &) = delete;

    /** Effective level after resolving "auto". */
    Level level() const { return level_; }

    /** True when the registry is recording. */
    bool metricsEnabled() const { return level_ != Level::Off; }

    /** The trace session, or null below Level::Full. */
    TraceSession *trace() { return trace_.get(); }

    /**
     * The sampler configuration implied by the telemetry flags
     * (enabled iff --listen-metrics, --metrics-series or
     * --flight-recorder was given).  Feed into SessionConfig.
     */
    TelemetryConfig telemetryConfig() const;

    /**
     * Adopt the Session-owned sampler: starts the --listen-metrics
     * exposition server and (re)arms the --flight-recorder against
     * the ring.  A null @p sampler is ignored.
     */
    void attachTelemetry(std::shared_ptr<TelemetrySampler> sampler);

    /**
     * For tools without a runtime::Session: create, start and own a
     * sampler per telemetryConfig() (no-op when telemetry is off or
     * a sampler is already attached).
     */
    void startLocalTelemetry();

    /** The attached sampler, or null. */
    std::shared_ptr<TelemetrySampler> telemetry() const
    {
        std::lock_guard lock(samplerMu_);
        return sampler_;
    }

    /** The exposition server, or null (port 0 / bind failure). */
    MetricsServer *metricsServer() { return server_.get(); }

    /** The armed flight recorder, or null. */
    FlightRecorder *flightRecorder() { return flight_.get(); }

    /**
     * The run ended abnormally: take a final telemetry sample and
     * write the flight-recorder dump tagged @p reason ("sigint",
     * "deadline", ...).  No-op without --flight-recorder.
     */
    void noteInterruption(const char *reason);

    /**
     * Write --metrics and --trace-out outputs, uninstall the active
     * trace and disable the registry.  Idempotent; called by the
     * destructor, but call it explicitly when output ordering
     * relative to other footers matters.
     */
    void finish();

  private:
    /** One periodic dump (and the final write path of finish()). */
    void dumpMetrics() const;

    Level level_ = Level::Off;
    std::string metricsPath_;
    std::string tracePath_;
    double metricsIntervalS_ = 0.0;
    std::uint16_t listenPort_ = 0;
    std::string seriesPath_;
    std::string flightPath_;
    double sampleIntervalMs_ = 100.0;
    std::unique_ptr<TraceSession> trace_;
    // sampler_ is written once by attachTelemetry() on the main
    // thread but read by the --metrics-interval dumper thread, so
    // every access goes through samplerMu_.
    mutable std::mutex samplerMu_;
    std::shared_ptr<TelemetrySampler> sampler_;
    std::unique_ptr<MetricsServer> server_;
    std::unique_ptr<FlightRecorder> flight_;
    bool ownsSampler_ = false;
    bool finished_ = false;

    // Background dumper (only when --metrics-interval > 0).
    std::thread dumper_;
    std::mutex dumperMu_;
    std::condition_variable dumperCv_;
    bool dumperStop_ = false;
};

} // namespace suit::obs

#endif // SUIT_OBS_SETUP_HH
