#include "obs/validate.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/format.hh"

namespace suit::obs {

namespace {

/**
 * Raw value token for "key": <token> in @p line, or empty when the
 * key is absent.  Tokens run to the next top-level ',' or '}' — good
 * enough for the flat, one-object-per-line documents we emit.
 */
std::string
fieldToken(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return {};
    std::size_t pos = at + needle.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos >= line.size())
        return {};
    std::size_t end = pos;
    if (line[pos] == '"') {
        end = pos + 1;
        while (end < line.size() && line[end] != '"') {
            if (line[end] == '\\')
                ++end;
            ++end;
        }
        if (end < line.size())
            ++end;
    } else if (line[pos] == '[' || line[pos] == '{') {
        const char open = line[pos];
        const char close = open == '[' ? ']' : '}';
        int depth = 0;
        end = pos;
        while (end < line.size()) {
            if (line[end] == open)
                ++depth;
            else if (line[end] == close && --depth == 0) {
                ++end;
                break;
            }
            ++end;
        }
    } else {
        while (end < line.size() && line[end] != ',' &&
               line[end] != '}')
            ++end;
    }
    return line.substr(pos, end - pos);
}

/** Unquoted string value of "key": "..." (empty when absent). */
std::string
fieldString(const std::string &line, const std::string &key)
{
    std::string token = fieldToken(line, key);
    if (token.size() >= 2 && token.front() == '"' &&
        token.back() == '"')
        return token.substr(1, token.size() - 2);
    return {};
}

/** Elements of a flat "[a, b, ...]" token (0 for empty/absent). */
std::size_t
arrayLength(const std::string &token)
{
    if (token.size() < 2 || token.front() != '[')
        return 0;
    const std::string body = token.substr(1, token.size() - 2);
    if (body.find_first_not_of(" \t") == std::string::npos)
        return 0;
    return static_cast<std::size_t>(
               std::count(body.begin(), body.end(), ',')) +
           1;
}

void
addName(CheckResult &result, const std::string &name)
{
    if (name.empty())
        return;
    if (std::find(result.names.begin(), result.names.end(), name) ==
        result.names.end())
        result.names.push_back(name);
}

CheckResult
fail(const std::string &error)
{
    CheckResult result;
    result.error = error;
    return result;
}

} // namespace

bool
CheckResult::hasName(const std::string &name) const
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

CheckResult
checkChromeTrace(const std::string &doc)
{
    if (doc.find("\"traceEvents\"") == std::string::npos)
        return fail("missing \"traceEvents\" key");

    CheckResult result;
    // Open B spans per (pid, tid) track.
    std::map<std::pair<std::string, std::string>, int> open;

    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.rfind("{\"ph\"", 0) != 0)
            continue; // structural line, not an event
        ++result.entries;
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        if (line.empty() || line.back() != '}')
            return fail(util::sformat(
                "line %zu: event object not closed", lineno));

        const std::string ph = fieldString(line, "ph");
        const std::string pid = fieldToken(line, "pid");
        const std::string tid = fieldToken(line, "tid");
        if (ph.size() != 1 ||
            std::string("BEXiMC").find(ph) == std::string::npos)
            return fail(util::sformat("line %zu: bad phase '%s'",
                                      lineno, ph.c_str()));
        if (pid.empty() || tid.empty())
            return fail(util::sformat(
                "line %zu: event missing pid/tid", lineno));
        if (ph != "M" && fieldToken(line, "ts").empty())
            return fail(util::sformat(
                "line %zu: %s event missing ts", lineno, ph.c_str()));
        if (ph == "X" && fieldToken(line, "dur").empty())
            return fail(util::sformat(
                "line %zu: X event missing dur", lineno));

        const std::string name = fieldString(line, "name");
        if ((ph == "B" || ph == "X" || ph == "i" || ph == "C") &&
            name.empty())
            return fail(util::sformat(
                "line %zu: %s event missing name", lineno,
                ph.c_str()));
        if (ph == "C" && fieldToken(line, "args").empty())
            return fail(util::sformat(
                "line %zu: C event '%s' missing args (series "
                "values)",
                lineno, name.c_str()));
        if (ph != "M")
            addName(result, name);

        if (ph == "B")
            ++open[{pid, tid}];
        if (ph == "E") {
            if (--open[{pid, tid}] < 0)
                return fail(util::sformat(
                    "line %zu: E without matching B on track "
                    "pid=%s tid=%s",
                    lineno, pid.c_str(), tid.c_str()));
        }
    }

    for (const auto &[track, depth] : open) {
        if (depth != 0)
            return fail(util::sformat(
                "unbalanced span: %d open B event(s) on track "
                "pid=%s tid=%s",
                depth, track.first.c_str(), track.second.c_str()));
    }
    if (result.entries == 0)
        return fail("no events found");
    result.ok = true;
    return result;
}

CheckResult
checkMetricsJson(const std::string &doc)
{
    if (doc.find("\"schema\": \"suit-obs-metrics-v1\"") ==
        std::string::npos)
        return fail("missing schema \"suit-obs-metrics-v1\"");
    if (doc.find("\"metrics\"") == std::string::npos)
        return fail("missing \"metrics\" key");

    CheckResult result;
    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Metric objects are the indented one-per-line entries.
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos ||
            line.compare(start, 8, "{\"name\":") != 0)
            continue;
        ++result.entries;

        const std::string name = fieldString(line, "name");
        const std::string kind = fieldString(line, "kind");
        if (name.empty())
            return fail(util::sformat(
                "line %zu: metric missing name", lineno));
        addName(result, name);
        if (kind != "counter" && kind != "gauge" &&
            kind != "histogram")
            return fail(util::sformat(
                "line %zu: metric '%s' has bad kind '%s'", lineno,
                name.c_str(), kind.c_str()));
        if (kind == "gauge") {
            if (fieldToken(line, "value").empty())
                return fail(util::sformat(
                    "line %zu: gauge '%s' missing value", lineno,
                    name.c_str()));
            continue;
        }
        if (fieldToken(line, "count").empty())
            return fail(util::sformat(
                "line %zu: %s '%s' missing count", lineno,
                kind.c_str(), name.c_str()));
        if (kind == "histogram") {
            const std::size_t bounds =
                arrayLength(fieldToken(line, "bounds"));
            const std::size_t buckets =
                arrayLength(fieldToken(line, "buckets"));
            if (bounds == 0 || buckets != bounds + 1)
                return fail(util::sformat(
                    "line %zu: histogram '%s' has %zu bounds but "
                    "%zu buckets (want bounds+1)",
                    lineno, name.c_str(), bounds, buckets));
        }
    }
    if (result.entries == 0)
        return fail("no metrics found");
    result.ok = true;
    return result;
}

namespace {

/** OpenMetrics metric-name syntax: [a-zA-Z_:][a-zA-Z0-9_:]*. */
bool
validOpenMetricsName(const std::string &name)
{
    if (name.empty())
        return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        const bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i > 0)))
            return false;
    }
    return true;
}

/** Whole-string double parse. */
bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
}

/** Whole-string unsigned parse. */
bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

/**
 * The family a sample's metric name belongs to: the name with a
 * known series suffix stripped when that base is in @p typed,
 * otherwise the name itself.
 */
std::string
sampleFamily(const std::string &name,
             const std::map<std::string, std::string> &typed)
{
    static const char *kSuffixes[] = {"_total", "_bucket", "_count",
                                      "_sum"};
    for (const char *suffix : kSuffixes) {
        const std::size_t len = std::string(suffix).size();
        if (name.size() > len &&
            name.compare(name.size() - len, len, suffix) == 0) {
            const std::string base =
                name.substr(0, name.size() - len);
            if (typed.count(base))
                return base;
        }
    }
    return name;
}

/** Split a flat "[a, b, ...]" token body on commas (trimmed). */
std::vector<std::string>
splitArray(const std::string &token)
{
    std::vector<std::string> out;
    if (token.size() < 2 || token.front() != '[')
        return out;
    const std::string body = token.substr(1, token.size() - 2);
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t comma = body.find(',', pos);
        if (comma == std::string::npos)
            comma = body.size();
        std::string item = body.substr(pos, comma - pos);
        const std::size_t a = item.find_first_not_of(" \t");
        if (a != std::string::npos) {
            const std::size_t b = item.find_last_not_of(" \t");
            out.push_back(item.substr(a, b - a + 1));
        }
        pos = comma + 1;
    }
    return out;
}

} // namespace

CheckResult
checkOpenMetrics(const std::string &doc)
{
    CheckResult result;
    std::map<std::string, std::string> typed; //!< family -> type
    std::set<std::string> seen;               //!< name{labels} keys
    std::string lastBucketFamily;
    std::uint64_t lastBucketCount = 0;
    bool sawEof = false;

    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (sawEof)
            return fail(util::sformat(
                "line %zu: content after # EOF", lineno));
        if (line == "# EOF") {
            sawEof = true;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string family, type;
            fields >> family >> type;
            if (!validOpenMetricsName(family))
                return fail(util::sformat(
                    "line %zu: bad metric name '%s' in # TYPE",
                    lineno, family.c_str()));
            if (type != "counter" && type != "gauge" &&
                type != "histogram" && type != "summary" &&
                type != "untyped")
                return fail(util::sformat(
                    "line %zu: bad type '%s' for '%s'", lineno,
                    type.c_str(), family.c_str()));
            if (!typed.emplace(family, type).second)
                return fail(util::sformat(
                    "line %zu: duplicate # TYPE for '%s'", lineno,
                    family.c_str()));
            addName(result, family);
            continue;
        }
        if (line[0] == '#')
            continue; // HELP or comment

        // Sample line: name[{labels}] value [timestamp]
        std::size_t nameEnd = line.find_first_of(" {");
        if (nameEnd == std::string::npos)
            return fail(util::sformat(
                "line %zu: sample has no value", lineno));
        const std::string name = line.substr(0, nameEnd);
        if (!validOpenMetricsName(name))
            return fail(util::sformat(
                "line %zu: bad metric name '%s'", lineno,
                name.c_str()));
        std::string key = name;
        std::size_t valueAt = nameEnd;
        if (line[nameEnd] == '{') {
            const std::size_t close = line.find('}', nameEnd);
            if (close == std::string::npos)
                return fail(util::sformat(
                    "line %zu: unterminated label set", lineno));
            key = line.substr(0, close + 1);
            valueAt = close + 1;
        }
        if (!seen.insert(key).second)
            return fail(util::sformat(
                "line %zu: duplicate sample for '%s'", lineno,
                key.c_str()));

        std::istringstream rest(line.substr(valueAt));
        std::string valueText;
        if (!(rest >> valueText))
            return fail(util::sformat(
                "line %zu: sample '%s' has no value", lineno,
                name.c_str()));
        double value = 0.0;
        if (!parseDouble(valueText, value) && valueText != "+Inf" &&
            valueText != "-Inf" && valueText != "NaN")
            return fail(util::sformat(
                "line %zu: bad sample value '%s'", lineno,
                valueText.c_str()));

        const std::string family = sampleFamily(name, typed);
        if (!typed.count(family))
            return fail(util::sformat(
                "line %zu: sample '%s' precedes its # TYPE line",
                lineno, name.c_str()));
        ++result.entries;

        // Histogram buckets are cumulative in le order; the emitted
        // order is the bucket order, so within one family's run of
        // _bucket lines the counts must never decrease.
        const bool isBucket =
            name.size() > 7 &&
            name.compare(name.size() - 7, 7, "_bucket") == 0;
        if (isBucket && family == lastBucketFamily) {
            if (value <
                static_cast<double>(lastBucketCount))
                return fail(util::sformat(
                    "line %zu: histogram '%s' bucket count "
                    "decreased",
                    lineno, family.c_str()));
        }
        if (isBucket) {
            lastBucketFamily = family;
            lastBucketCount = static_cast<std::uint64_t>(value);
        } else {
            lastBucketFamily.clear();
            lastBucketCount = 0;
        }
    }

    if (!sawEof)
        return fail("missing # EOF terminator");
    if (result.entries == 0)
        return fail("no samples found");
    result.ok = true;
    return result;
}

CheckResult
checkFlightJsonl(const std::string &doc)
{
    CheckResult result;
    std::vector<std::string> seriesNames;
    std::vector<std::string> seriesKinds;
    bool sawHeader = false;
    std::uint64_t lastSample = 0;
    double lastHostUs = -1.0;
    std::vector<std::uint64_t> lastCounts;

    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;

        if (!sawHeader) {
            if (fieldString(line, "schema") != "suit-flight-v1")
                return fail(util::sformat(
                    "line %zu: missing schema \"suit-flight-v1\"",
                    lineno));
            if (fieldString(line, "reason").empty())
                return fail(util::sformat(
                    "line %zu: header missing reason", lineno));
            const std::string series = fieldToken(line, "series");
            if (series.empty() || series.front() != '[')
                return fail(util::sformat(
                    "line %zu: header missing series array",
                    lineno));
            // Walk the {"name": ..., "kind": ...} objects.
            std::size_t pos = 0;
            while ((pos = series.find("{\"name\":", pos)) !=
                   std::string::npos) {
                std::size_t close = series.find('}', pos);
                if (close == std::string::npos)
                    break;
                const std::string object =
                    series.substr(pos, close - pos + 1);
                const std::string name =
                    fieldString(object, "name");
                const std::string kind =
                    fieldString(object, "kind");
                if (name.empty())
                    return fail(util::sformat(
                        "line %zu: series entry missing name",
                        lineno));
                if (kind != "counter" && kind != "gauge" &&
                    kind != "histogram")
                    return fail(util::sformat(
                        "line %zu: series '%s' has bad kind '%s'",
                        lineno, name.c_str(), kind.c_str()));
                if (std::find(seriesNames.begin(),
                              seriesNames.end(),
                              name) != seriesNames.end())
                    return fail(util::sformat(
                        "line %zu: duplicate series '%s'", lineno,
                        name.c_str()));
                seriesNames.push_back(name);
                seriesKinds.push_back(kind);
                addName(result, name);
                pos = close + 1;
            }
            lastCounts.assign(seriesNames.size(), 0);
            sawHeader = true;
            continue;
        }

        if (line.rfind("{\"sample\":", 0) == 0) {
            std::uint64_t id = 0;
            if (!parseU64(fieldToken(line, "sample"), id))
                return fail(util::sformat(
                    "line %zu: bad sample id", lineno));
            if (id <= lastSample)
                return fail(util::sformat(
                    "line %zu: sample id %llu not increasing "
                    "(previous %llu)",
                    lineno, static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(lastSample)));
            lastSample = id;
            double hostUs = 0.0;
            if (!parseDouble(fieldToken(line, "host_us"), hostUs))
                return fail(util::sformat(
                    "line %zu: sample missing host_us", lineno));
            if (hostUs < lastHostUs)
                return fail(util::sformat(
                    "line %zu: host_us went backwards", lineno));
            lastHostUs = hostUs;

            const std::vector<std::string> values =
                splitArray(fieldToken(line, "values"));
            if (values.size() > seriesNames.size())
                return fail(util::sformat(
                    "line %zu: %zu values for %zu series", lineno,
                    values.size(), seriesNames.size()));
            for (std::size_t i = 0; i < values.size(); ++i) {
                if (seriesKinds[i] == "gauge") {
                    double v = 0.0;
                    if (!parseDouble(values[i], v))
                        return fail(util::sformat(
                            "line %zu: bad gauge value '%s'",
                            lineno, values[i].c_str()));
                    continue;
                }
                std::uint64_t v = 0;
                if (!parseU64(values[i], v))
                    return fail(util::sformat(
                        "line %zu: bad counter value '%s'", lineno,
                        values[i].c_str()));
                if (v < lastCounts[i])
                    return fail(util::sformat(
                        "line %zu: counter '%s' decreased "
                        "(%llu -> %llu)",
                        lineno, seriesNames[i].c_str(),
                        static_cast<unsigned long long>(
                            lastCounts[i]),
                        static_cast<unsigned long long>(v)));
                lastCounts[i] = v;
            }
            ++result.entries;
            continue;
        }

        if (line.rfind("{\"span_thread\":", 0) == 0) {
            if (fieldToken(line, "span_thread").empty() ||
                fieldString(line, "name").empty())
                return fail(util::sformat(
                    "line %zu: span missing thread/name", lineno));
            addName(result, fieldString(line, "name"));
            ++result.entries;
            continue;
        }

        return fail(util::sformat(
            "line %zu: unrecognised flight line", lineno));
    }

    if (!sawHeader)
        return fail("missing suit-flight-v1 header");
    if (result.entries == 0)
        return fail("no samples or spans found");
    result.ok = true;
    return result;
}

} // namespace suit::obs
