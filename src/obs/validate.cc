#include "obs/validate.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/format.hh"

namespace suit::obs {

namespace {

/**
 * Raw value token for "key": <token> in @p line, or empty when the
 * key is absent.  Tokens run to the next top-level ',' or '}' — good
 * enough for the flat, one-object-per-line documents we emit.
 */
std::string
fieldToken(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return {};
    std::size_t pos = at + needle.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos >= line.size())
        return {};
    std::size_t end = pos;
    if (line[pos] == '"') {
        end = pos + 1;
        while (end < line.size() && line[end] != '"') {
            if (line[end] == '\\')
                ++end;
            ++end;
        }
        if (end < line.size())
            ++end;
    } else if (line[pos] == '[' || line[pos] == '{') {
        const char open = line[pos];
        const char close = open == '[' ? ']' : '}';
        int depth = 0;
        end = pos;
        while (end < line.size()) {
            if (line[end] == open)
                ++depth;
            else if (line[end] == close && --depth == 0) {
                ++end;
                break;
            }
            ++end;
        }
    } else {
        while (end < line.size() && line[end] != ',' &&
               line[end] != '}')
            ++end;
    }
    return line.substr(pos, end - pos);
}

/** Unquoted string value of "key": "..." (empty when absent). */
std::string
fieldString(const std::string &line, const std::string &key)
{
    std::string token = fieldToken(line, key);
    if (token.size() >= 2 && token.front() == '"' &&
        token.back() == '"')
        return token.substr(1, token.size() - 2);
    return {};
}

/** Elements of a flat "[a, b, ...]" token (0 for empty/absent). */
std::size_t
arrayLength(const std::string &token)
{
    if (token.size() < 2 || token.front() != '[')
        return 0;
    const std::string body = token.substr(1, token.size() - 2);
    if (body.find_first_not_of(" \t") == std::string::npos)
        return 0;
    return static_cast<std::size_t>(
               std::count(body.begin(), body.end(), ',')) +
           1;
}

void
addName(CheckResult &result, const std::string &name)
{
    if (name.empty())
        return;
    if (std::find(result.names.begin(), result.names.end(), name) ==
        result.names.end())
        result.names.push_back(name);
}

CheckResult
fail(const std::string &error)
{
    CheckResult result;
    result.error = error;
    return result;
}

} // namespace

bool
CheckResult::hasName(const std::string &name) const
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

CheckResult
checkChromeTrace(const std::string &doc)
{
    if (doc.find("\"traceEvents\"") == std::string::npos)
        return fail("missing \"traceEvents\" key");

    CheckResult result;
    // Open B spans per (pid, tid) track.
    std::map<std::pair<std::string, std::string>, int> open;

    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.rfind("{\"ph\"", 0) != 0)
            continue; // structural line, not an event
        ++result.entries;
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        if (line.empty() || line.back() != '}')
            return fail(util::sformat(
                "line %zu: event object not closed", lineno));

        const std::string ph = fieldString(line, "ph");
        const std::string pid = fieldToken(line, "pid");
        const std::string tid = fieldToken(line, "tid");
        if (ph.size() != 1 ||
            std::string("BEXiM").find(ph) == std::string::npos)
            return fail(util::sformat("line %zu: bad phase '%s'",
                                      lineno, ph.c_str()));
        if (pid.empty() || tid.empty())
            return fail(util::sformat(
                "line %zu: event missing pid/tid", lineno));
        if (ph != "M" && fieldToken(line, "ts").empty())
            return fail(util::sformat(
                "line %zu: %s event missing ts", lineno, ph.c_str()));
        if (ph == "X" && fieldToken(line, "dur").empty())
            return fail(util::sformat(
                "line %zu: X event missing dur", lineno));

        const std::string name = fieldString(line, "name");
        if ((ph == "B" || ph == "X" || ph == "i") && name.empty())
            return fail(util::sformat(
                "line %zu: %s event missing name", lineno,
                ph.c_str()));
        if (ph != "M")
            addName(result, name);

        if (ph == "B")
            ++open[{pid, tid}];
        if (ph == "E") {
            if (--open[{pid, tid}] < 0)
                return fail(util::sformat(
                    "line %zu: E without matching B on track "
                    "pid=%s tid=%s",
                    lineno, pid.c_str(), tid.c_str()));
        }
    }

    for (const auto &[track, depth] : open) {
        if (depth != 0)
            return fail(util::sformat(
                "unbalanced span: %d open B event(s) on track "
                "pid=%s tid=%s",
                depth, track.first.c_str(), track.second.c_str()));
    }
    if (result.entries == 0)
        return fail("no events found");
    result.ok = true;
    return result;
}

CheckResult
checkMetricsJson(const std::string &doc)
{
    if (doc.find("\"schema\": \"suit-obs-metrics-v1\"") ==
        std::string::npos)
        return fail("missing schema \"suit-obs-metrics-v1\"");
    if (doc.find("\"metrics\"") == std::string::npos)
        return fail("missing \"metrics\" key");

    CheckResult result;
    std::istringstream in(doc);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Metric objects are the indented one-per-line entries.
        std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos ||
            line.compare(start, 8, "{\"name\":") != 0)
            continue;
        ++result.entries;

        const std::string name = fieldString(line, "name");
        const std::string kind = fieldString(line, "kind");
        if (name.empty())
            return fail(util::sformat(
                "line %zu: metric missing name", lineno));
        addName(result, name);
        if (kind != "counter" && kind != "gauge" &&
            kind != "histogram")
            return fail(util::sformat(
                "line %zu: metric '%s' has bad kind '%s'", lineno,
                name.c_str(), kind.c_str()));
        if (kind == "gauge") {
            if (fieldToken(line, "value").empty())
                return fail(util::sformat(
                    "line %zu: gauge '%s' missing value", lineno,
                    name.c_str()));
            continue;
        }
        if (fieldToken(line, "count").empty())
            return fail(util::sformat(
                "line %zu: %s '%s' missing count", lineno,
                kind.c_str(), name.c_str()));
        if (kind == "histogram") {
            const std::size_t bounds =
                arrayLength(fieldToken(line, "bounds"));
            const std::size_t buckets =
                arrayLength(fieldToken(line, "buckets"));
            if (bounds == 0 || buckets != bounds + 1)
                return fail(util::sformat(
                    "line %zu: histogram '%s' has %zu bounds but "
                    "%zu buckets (want bounds+1)",
                    lineno, name.c_str(), bounds, buckets));
        }
    }
    if (result.entries == 0)
        return fail("no metrics found");
    result.ok = true;
    return result;
}

} // namespace suit::obs
