/**
 * @file
 * Structured event tracing with Chrome trace_event export.
 *
 * A TraceSession collects timeline events — spans (begin/end or
 * complete), instants and track metadata — and renders them as a
 * Chrome trace_event JSON document loadable in chrome://tracing or
 * Perfetto.  Two synthetic processes keep the two clock domains
 * apart on the timeline:
 *
 *  - kSimPid: simulated time.  Timestamps are simulated microseconds
 *    (ticks are picoseconds; use simUs() to convert).  Per-domain
 *    p-state transitions, #DO trap instants and deadline resets live
 *    here, one track per simulated domain.
 *  - kHostPid: wall-clock time since the session started.  Sweep
 *    cells, worker lifetimes and checkpoint writes live here, one
 *    track per host thread (threadTrack()).
 *
 * Emission is mutex-serialised — trace points sit on rare paths
 * (p-state changes, traps, sweep-cell boundaries), never inside the
 * per-event simulator loop.  When no session is installed the
 * SUIT_OBS_EVENT macro reduces to one relaxed atomic load and no
 * argument evaluation, which is the project's "observability off"
 * cost everywhere outside suit_sim's always-on plain counters.
 *
 * Sessions cap at kMaxEvents events; later events are counted as
 * dropped rather than growing without bound (a full sweep can emit
 * millions of instants).
 */

#ifndef SUIT_OBS_TRACE_HH
#define SUIT_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/ticks.hh"

namespace suit::obs {

/** One "key": value argument attached to a trace event. */
struct TraceArg
{
    TraceArg(std::string key, const std::string &value);
    TraceArg(std::string key, const char *value);
    TraceArg(std::string key, double value);
    TraceArg(std::string key, std::uint64_t value);
    TraceArg(std::string key, std::int64_t value);
    TraceArg(std::string key, int value);
    TraceArg(std::string key, unsigned value);

    std::string key;
    std::string json; //!< value rendered as a JSON literal
};

using TraceArgs = std::vector<TraceArg>;

/** Chrome-trace event collector; see the file comment. */
class TraceSession
{
  public:
    /** Synthetic process id for simulated-time tracks. */
    static constexpr int kSimPid = 1;
    /** Synthetic process id for host wall-clock tracks. */
    static constexpr int kHostPid = 2;

    /** Events kept before further emission only counts drops. */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Allocate a named track (a "thread" row on the timeline) under
     * @p pid and return its tid.  Emits the thread_name metadata.
     */
    int newTrack(int pid, const std::string &name);

    /**
     * Track for the calling host thread under kHostPid, creating and
     * naming it @p name on first use (later calls return the same
     * tid and ignore @p name).
     */
    int threadTrack(const std::string &name);

    /** @{
     * Event emission.  @p ts (and @p dur) are microseconds in the
     * clock domain of @p pid: simulated µs for kSimPid (simUs()),
     * hostNowUs() for kHostPid.
     */
    void begin(int pid, int tid, double ts, const std::string &name,
               const std::string &cat, const TraceArgs &args = {});
    void end(int pid, int tid, double ts);
    void complete(int pid, int tid, double ts, double dur,
                  const std::string &name, const std::string &cat,
                  const TraceArgs &args = {});
    void instant(int pid, int tid, double ts, const std::string &name,
                 const std::string &cat, const TraceArgs &args = {});
    /**
     * Counter event ('C'): each arg is one series of the named
     * counter group on the track; viewers plot args over ts as
     * stacked areas.  The fleet engine emits per-rack cumulative
     * domains/energy/p-state series this way.  @p args must be
     * non-empty (a counter without series plots nothing).
     */
    void counter(int pid, int tid, double ts, const std::string &name,
                 const TraceArgs &args);
    /** @} */

    /** Simulated-time ticks (ps) as trace microseconds. */
    static double simUs(util::Tick t)
    {
        return util::ticksToMicroseconds(t);
    }

    /** Wall-clock microseconds since this session was created. */
    double hostNowUs() const;

    /** Events currently buffered (metadata included). */
    std::size_t eventCount() const;

    /** Events discarded after the kMaxEvents cap was hit. */
    std::uint64_t dropped() const;

    /**
     * Render the whole trace as a Chrome trace_event JSON document
     * ({"traceEvents": [...]}; one event object per line).
     */
    std::string render() const;

    /**
     * Write render() to @p path ("-" for stdout).
     * @return false (with a warning) if the file cannot be written.
     */
    bool writeTo(const std::string &path) const;

  private:
    struct Event
    {
        char ph = 'i';
        int pid = 0;
        int tid = 0;
        double ts = 0.0;
        double dur = 0.0;
        std::string name;
        std::string cat;
        std::string argsJson; //!< pre-rendered "{...}", may be empty
    };

    void push(Event event);
    int newTrackLocked(int pid, const std::string &name);

    const std::chrono::steady_clock::time_point start_;

    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::atomic<std::uint64_t> dropped_{0};
    std::map<int, int> nextTid_;                 //!< per pid
    std::map<std::thread::id, int> hostTracks_;
};

/**
 * @{
 * The active session trace points emit into, or null when tracing is
 * off (the default).  Installation is the CLI's job (obs::CliScope);
 * instrumented objects either latch the pointer at construction (the
 * simulator, so a run's tracing is all-or-nothing) or read it per
 * event via SUIT_OBS_EVENT.
 */
TraceSession *activeTrace();
void setActiveTrace(TraceSession *session);
/** @} */

/**
 * Emit a trace event iff a session is active.  The argument list is
 * the member call to make on the session, so arguments are not even
 * evaluated when tracing is off:
 *
 *   SUIT_OBS_EVENT(instant(TraceSession::kHostPid, tid,
 *                          s->hostNowUs(), "retry", "exec"));
 */
#define SUIT_OBS_EVENT(...)                                             \
    do {                                                                \
        if (::suit::obs::TraceSession *suit_obs_session_ =              \
                ::suit::obs::activeTrace()) {                           \
            suit_obs_session_->__VA_ARGS__;                             \
        }                                                               \
    } while (0)

} // namespace suit::obs

#endif // SUIT_OBS_TRACE_HH
