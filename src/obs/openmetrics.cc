#include "obs/openmetrics.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/format.hh"
#include "util/logging.hh"

namespace suit::obs {

std::string
openMetricsName(const std::string &name)
{
    std::string out = "suit_";
    out.reserve(name.size() + 5);
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

std::string
renderOpenMetrics(const Snapshot &snap)
{
    std::string out;
    out.reserve(snap.metrics.size() * 96 + 16);
    for (const MetricValue &m : snap.metrics) {
        const std::string name = openMetricsName(m.name);
        switch (m.kind) {
          case MetricKind::Counter:
            out += "# TYPE " + name + " counter\n";
            out += util::sformat(
                "%s_total %llu\n", name.c_str(),
                static_cast<unsigned long long>(m.count));
            break;
          case MetricKind::Gauge:
            out += "# TYPE " + name + " gauge\n";
            out += util::sformat("%s %.17g\n", name.c_str(), m.value);
            break;
          case MetricKind::Histogram: {
            out += "# TYPE " + name + " histogram\n";
            const auto &bounds = m.histogram.bounds();
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < m.histogram.bucketCount();
                 ++b) {
                cumulative += m.histogram.count(b);
                const std::string le =
                    b < bounds.size()
                        ? util::sformat("%.17g", bounds[b])
                        : std::string("+Inf");
                out += util::sformat(
                    "%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                    le.c_str(),
                    static_cast<unsigned long long>(cumulative));
            }
            out += util::sformat(
                "%s_count %llu\n", name.c_str(),
                static_cast<unsigned long long>(
                    m.histogram.total()));
            break;
          }
        }
    }
    out += "# EOF\n";
    return out;
}

MetricsServer::MetricsServer(std::uint16_t port,
                             std::function<std::string()> render)
    : render_(std::move(render))
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        util::warn("--listen-metrics: socket() failed: %s",
                   std::strerror(errno));
        return;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        util::warn("--listen-metrics: cannot bind 127.0.0.1:%u: %s",
                   static_cast<unsigned>(port), std::strerror(errno));
        ::close(fd);
        return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    listenFd_ = fd;
    thread_ = std::thread([this] { serve(); });
}

MetricsServer::~MetricsServer()
{
    stop();
}

void
MetricsServer::stop()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
MetricsServer::serve()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100 /* ms */);
        if (ready <= 0)
            continue; // timeout (re-check stop flag) or EINTR
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;

        // Drain whatever request line arrived; the endpoint serves
        // the same document regardless of the path.
        char buf[1024];
        (void)::recv(client, buf, sizeof(buf), MSG_DONTWAIT);

        const std::string body = render_();
        const std::string header = util::sformat(
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
            "Content-Length: %zu\r\n"
            "Connection: close\r\n\r\n",
            body.size());
        (void)!::write(client, header.data(), header.size());
        std::size_t off = 0;
        while (off < body.size()) {
            const ssize_t n = ::write(client, body.data() + off,
                                      body.size() - off);
            if (n <= 0)
                break;
            off += static_cast<std::size_t>(n);
        }
        // Count before close: a client that saw its connection shut
        // must also see the scrape counted.
        scrapes_.fetch_add(1, std::memory_order_relaxed);
        ::close(client);
    }
}

} // namespace suit::obs
