#include "runtime/run_context.hh"

#include "obs/trace.hh"

namespace suit::runtime {

RunContext::RunContext() : trace_(obs::activeTrace()) {}

} // namespace suit::runtime
