/**
 * @file
 * Session: process-lifetime execution state shared by every engine.
 *
 * A Session owns exactly one exec::ThreadPool (absent in serial
 * mode) and one bounded sim::TraceCache, so a long-lived process — a
 * CLI running several sweeps, the future suit_serve daemon — pays
 * for workers and trace generation once and shares both across runs.
 * Engines (exec::SweepEngine, fleet::FleetEngine) borrow the Session
 * by reference; per-run state (cancellation, deadline, journal
 * policy) lives in RunContext instead.
 *
 * Ownership picture:
 *
 *   Session (process lifetime)
 *    +- exec::ThreadPool        one pool, null when jobs == 1
 *    +- sim::TraceCache         LRU-bounded, shared by all engines
 *   RunContext (per run)
 *    +- CancelToken             cancel / SIGINT link / deadline
 *    +- CheckpointPolicy        journal path + resume
 *    +- obs::TraceSession*      latched at construction
 */
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "obs/telemetry.hh"
#include "sim/trace_cache.hh"
#include "sim/workspace.hh"

namespace suit::runtime {

struct SessionConfig {
    /**
     * Worker count: 0 = ThreadPool::hardwareConcurrency(),
     * 1 = serial in-line execution (reference path), n > 1 = pool of
     * n workers.
     */
    int jobs = 0;
    /** Task queue bound; 0 = 2 x workers. */
    std::size_t queueCapacity = 0;
    /** Trace cache capacity in bytes (LRU eviction above it). */
    std::size_t traceCacheBytes =
        suit::sim::TraceCache::kDefaultCapacityBytes;
    /**
     * Pin worker i to CPU i mod hardwareConcurrency() (--pin).
     * Opt-in: pinning helps cache locality on dedicated machines but
     * hurts on shared ones; unsupported platforms warn and continue
     * unpinned.  No effect in serial mode.
     */
    bool pinWorkers = false;
    /**
     * Telemetry sampler over obs::metrics() (disabled by default).
     * When enabled the Session owns a TelemetrySampler thread for
     * its lifetime — obs::CliScope::telemetryConfig() builds this
     * from --listen-metrics/--metrics-series/--flight-recorder.
     */
    suit::obs::TelemetryConfig telemetry;
};

class Session
{
  public:
    explicit Session(SessionConfig config = {});
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Effective worker count (1 when running serially). */
    int jobs() const;

    /** The shared pool, or nullptr in serial mode. */
    suit::exec::ThreadPool *pool() { return pool_.get(); }

    /**
     * The calling thread's simulation workspace.
     *
     * The Session owns jobs() + 1 workspaces: slot 0 for the thread
     * that owns the Session (serial runs, engine setup), slots 1..n
     * for the pool's workers, addressed through
     * exec::ThreadPool::currentWorkerIndex().  Each thread only ever
     * sees its own slot, so the returned workspace needs no locking;
     * its contents are scratch, overwritten by the next evaluation
     * on the same thread.
     */
    suit::sim::SimWorkspace &workspace();

    /** The session-wide bounded trace cache. */
    suit::sim::TraceCache &traceCache() { return traces_; }
    const suit::sim::TraceCache &traceCache() const
    {
        return traces_;
    }

    const SessionConfig &config() const { return cfg_; }

    /**
     * The session-owned telemetry sampler, or null when telemetry
     * is disabled.  Shared so obs::CliScope (declared before the
     * Session in every CLI, thus destroyed after it) can keep the
     * ring alive for its final --metrics-series/--flight-recorder
     * writes; the Session's destructor stops the sampling thread.
     */
    const std::shared_ptr<suit::obs::TelemetrySampler> &
    telemetry() const
    {
        return telemetry_;
    }

    /**
     * Per-worker counters accumulated over every run so far (empty
     * in serial mode).
     */
    std::vector<suit::exec::WorkerStats> workerStats() const;

    /**
     * Render the per-worker counters as a footer table
     * ("worker | jobs | queue wait | busy"), or a one-line serial
     * notice in serial mode.
     */
    std::string workerFooter() const;

  private:
    SessionConfig cfg_;
    suit::sim::TraceCache traces_;
    std::unique_ptr<suit::exec::ThreadPool> pool_;
    /** Slot 0: session thread; slots 1..jobs(): pool workers. */
    std::vector<std::unique_ptr<suit::sim::SimWorkspace>> workspaces_;
    std::shared_ptr<suit::obs::TelemetrySampler> telemetry_;
};

} // namespace suit::runtime
