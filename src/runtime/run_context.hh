/**
 * @file
 * Per-run scope for the engines: one RunContext per sweep / fleet /
 * characterization run.  Bundles the cancellation token (with its
 * optional wall-clock deadline), the checkpoint/journal policy that
 * sweep and fleet previously each carried in their own options
 * struct, and the obs trace session latched at construction so every
 * engine observes the same session for the whole run.
 *
 * A RunContext is cheap and single-use by convention: resuming an
 * interrupted run means building a fresh context (with a fresh,
 * untripped token) pointing at the same journal path with
 * checkpoint.resume = true.
 */
#pragma once

#include <string>

#include "runtime/cancel.hh"

namespace suit::obs {
class TraceSession;
}

namespace suit::runtime {

/**
 * Where (and whether) a run journals completed cells/shards, and
 * whether it must first restore a previous journal's valid prefix.
 * Shared verbatim by exec::SweepEngine and fleet::FleetEngine — the
 * journal format already is (exec::CheckpointJournal), only the
 * policy plumbing diverged.
 */
struct CheckpointPolicy {
    /** Journal path; empty disables checkpointing. */
    std::string path;
    /** Restore the journal's valid prefix before running. */
    bool resume = false;
    /**
     * Flush the journal to disk every N appended records
     * (--checkpoint-flush).  1 (the default) preserves the original
     * every-record durability; larger values amortise the
     * rewrite + fsync + rename cycle over N cells/shards at the cost
     * of re-running at most N-1 of them after a crash.  The atomic
     * longest-valid-prefix recovery contract is unchanged — a kill
     * at any instant leaves a loadable journal.
     */
    int flushInterval = 1;
};

class RunContext
{
  public:
    /** Latches the obs trace session active at construction. */
    RunContext();

    RunContext(const RunContext &) = delete;
    RunContext &operator=(const RunContext &) = delete;

    CancelToken &token() noexcept { return token_; }
    const CancelToken &token() const noexcept { return token_; }

    /** Shorthand for token().cancelled(). */
    bool cancelled() const noexcept { return token_.cancelled(); }

    /** Arm a wall-clock budget; expiry trips the token. */
    void setDeadlineAfter(double seconds) noexcept
    {
        token_.setDeadlineAfter(seconds);
    }

    /** Trace session to emit run events into (may be null). */
    suit::obs::TraceSession *trace() const noexcept
    {
        return trace_;
    }

    /** Journal policy for this run (mutated freely before run()). */
    CheckpointPolicy checkpoint;

  private:
    CancelToken token_;
    suit::obs::TraceSession *trace_ = nullptr;
};

} // namespace suit::runtime
