#include "runtime/session.hh"

#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace suit::runtime {

using suit::exec::ThreadPool;
using suit::exec::WorkerStats;

Session::Session(SessionConfig config)
    : cfg_(config), traces_(config.traceCacheBytes)
{
    const int requested = cfg_.jobs == 0
                              ? ThreadPool::hardwareConcurrency()
                              : cfg_.jobs;
    SUIT_ASSERT(requested >= 1, "worker count must be >= 1, got %d",
                requested);
    if (requested > 1) {
        pool_ = std::make_unique<ThreadPool>(requested,
                                             cfg_.queueCapacity,
                                             cfg_.pinWorkers);
    }
    // One workspace per pool worker plus one for the session thread
    // (slot 0).  unique_ptr slots keep each workspace's address
    // stable and avoid false sharing between adjacent workers' hot
    // simulator state.
    const std::size_t slots = static_cast<std::size_t>(jobs()) + 1;
    workspaces_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i)
        workspaces_.push_back(
            std::make_unique<suit::sim::SimWorkspace>());

    if (cfg_.telemetry.enabled) {
        telemetry_ = std::make_shared<suit::obs::TelemetrySampler>(
            suit::obs::metrics(), cfg_.telemetry);
        telemetry_->start();
    }
}

suit::sim::SimWorkspace &
Session::workspace()
{
    const int worker = ThreadPool::currentWorkerIndex();
    const std::size_t slot = static_cast<std::size_t>(worker + 1);
    SUIT_ASSERT(slot < workspaces_.size(),
                "worker index %d outside this session's pool", worker);
    return *workspaces_[slot];
}

Session::~Session()
{
    // Stop the sampling thread with the Session; the ring itself may
    // outlive us through the shared_ptr a CliScope holds for its
    // final series/flight writes.
    if (telemetry_)
        telemetry_->stop();
}

int
Session::jobs() const
{
    return pool_ ? pool_->workers() : 1;
}

std::vector<WorkerStats>
Session::workerStats() const
{
    return pool_ ? pool_->stats() : std::vector<WorkerStats>{};
}

std::string
Session::workerFooter() const
{
    if (!pool_)
        return "session: serial reference path (1 job)\n";

    suit::util::TablePrinter t(
        {"worker", "jobs", "queue wait", "busy"});
    const std::vector<WorkerStats> stats = pool_->stats();
    std::uint64_t total_jobs = 0;
    double total_busy = 0.0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const WorkerStats &s = stats[i];
        t.addRow({suit::util::sformat("#%zu", i),
                  suit::util::sformat(
                      "%llu",
                      static_cast<unsigned long long>(s.jobsRun)),
                  suit::util::sformat("%.3f s", s.queueWaitS),
                  suit::util::sformat("%.3f s", s.busyS)});
        total_jobs += s.jobsRun;
        total_busy += s.busyS;
    }
    t.addSeparator();
    t.addRow({"all",
              suit::util::sformat(
                  "%llu", static_cast<unsigned long long>(total_jobs)),
              "", suit::util::sformat("%.3f s", total_busy)});
    return t.render();
}

} // namespace suit::runtime
