/**
 * @file
 * Cooperative cancellation for the runtime layer.
 *
 * A CancelToken is a latching one-way switch observed from many
 * threads.  Three independent sources can trip it:
 *
 *   - an explicit cancel() call (tests, RPC teardown),
 *   - a linked external flag (util::SigintGuard's Ctrl-C latch),
 *   - a wall-clock deadline (steady_clock, stored as atomic ns).
 *
 * cancelled() folds all three and latches, so a deadline that has
 * tripped once stays tripped even if the clock were to misbehave and
 * an unlinked external flag cannot "un-cancel" a run.  Everything is
 * plain atomics — the header is dependency-free on purpose so that
 * low layers (sim, faults) can poll a token without linking against
 * suit_runtime.
 *
 * Cancellation can never break bit-identity: engines treat a tripped
 * token as "skip the remaining cells" and a mid-cell Cancelled throw
 * as "this cell never ran" (not journaled, not counted), so a resume
 * recomputes exactly the missing pure-function cells.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>

namespace suit::runtime {

/**
 * Thrown by cooperative cancellation points (DomainSimulator's event
 * loop, long per-cell work) when the governing token has tripped.
 * Engines catch it at the cell/shard boundary and account the unit
 * of work as skipped — never as failed, never as journaled.
 */
class Cancelled : public std::exception
{
  public:
    const char *what() const noexcept override
    {
        return "run cancelled";
    }
};

class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Trip the token permanently. */
    void cancel() noexcept
    {
        tripped_.store(true, std::memory_order_release);
    }

    /**
     * Observe external cancellation requests (e.g. the SIGINT
     * latch).  The pointee must outlive the token; pass nullptr to
     * unlink.  The token latches on the first observed true.
     */
    void linkExternal(const std::atomic<bool> *flag) noexcept
    {
        external_.store(flag, std::memory_order_release);
    }

    /** Trip the token once steady_clock reaches @p deadline. */
    void setDeadline(std::chrono::steady_clock::time_point deadline)
        noexcept
    {
        deadlineNs_.store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline.time_since_epoch())
                .count(),
            std::memory_order_release);
    }

    /** Trip the token @p seconds from now (0 trips on next poll). */
    void setDeadlineAfter(double seconds) noexcept
    {
        const auto delta = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
        setDeadline(std::chrono::steady_clock::now() + delta);
    }

    void clearDeadline() noexcept
    {
        deadlineNs_.store(kNoDeadline, std::memory_order_release);
    }

    bool hasDeadline() const noexcept
    {
        return deadlineNs_.load(std::memory_order_acquire) !=
               kNoDeadline;
    }

    /**
     * Poll.  Cheap when untripped (one or two relaxed atomic loads;
     * the clock is only read when a deadline is armed).  Latches.
     */
    bool cancelled() const noexcept
    {
        if (tripped_.load(std::memory_order_acquire))
            return true;
        const std::atomic<bool> *ext =
            external_.load(std::memory_order_acquire);
        if (ext != nullptr && ext->load(std::memory_order_acquire)) {
            tripped_.store(true, std::memory_order_release);
            return true;
        }
        const std::int64_t deadline =
            deadlineNs_.load(std::memory_order_acquire);
        if (deadline != kNoDeadline) {
            const std::int64_t now =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now()
                        .time_since_epoch())
                    .count();
            if (now >= deadline) {
                tripped_.store(true, std::memory_order_release);
                return true;
            }
        }
        return false;
    }

    /** Throw Cancelled if the token has tripped. */
    void throwIfCancelled() const
    {
        if (cancelled())
            throw Cancelled{};
    }

  private:
    static constexpr std::int64_t kNoDeadline =
        INT64_MAX;

    /** Latched result; mutable so cancelled() can latch via const. */
    mutable std::atomic<bool> tripped_{false};
    std::atomic<const std::atomic<bool> *> external_{nullptr};
    std::atomic<std::int64_t> deadlineNs_{kNoDeadline};
};

} // namespace suit::runtime
