#include "exec/thread_pool.hh"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::exec {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * The pool whose worker the current thread is (null on non-worker
 * threads).  Lets parallelFor() detect the nested-use deadlock: a
 * job that re-enters parallelFor() on its own pool both competes for
 * the bounded queue and waits on jobs only this pool can run.
 */
thread_local const ThreadPool *tls_worker_pool = nullptr;

/**
 * Index of the current thread within its pool (-1 off-pool).  Read
 * through ThreadPool::currentWorkerIndex() to address per-worker
 * state such as the Session's simulation workspaces.
 */
thread_local int tls_worker_index = -1;

std::uint64_t
elapsedNs(Clock::time_point from, Clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

} // namespace

int
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
ThreadPool::currentWorkerIndex()
{
    return tls_worker_index;
}

bool
ThreadPool::pinCurrentThread(std::size_t index)
{
#if defined(__linux__)
    const int ncpus = hardwareConcurrency();
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(index) % ncpus, &set);
    const int rc = pthread_setaffinity_np(pthread_self(),
                                          sizeof(set), &set);
    if (rc != 0) {
        // Once per pool is enough: if one affinity call is refused
        // (cgroup cpuset, restricted mask), they all will be.
        static std::once_flag warned;
        std::call_once(warned, [rc] {
            suit::util::warn(
                "worker pinning requested but "
                "pthread_setaffinity_np failed (errno %d); "
                "continuing unpinned",
                rc);
        });
        return false;
    }
    return true;
#else
    (void)index;
    static std::once_flag warned;
    std::call_once(warned, [] {
        suit::util::warn("worker pinning is not supported on this "
                         "platform; continuing unpinned");
    });
    return false;
#endif
}

ThreadPool::ThreadPool(int workers, std::size_t queue_capacity,
                       bool pin_workers)
    : queue_(queue_capacity != 0
                 ? queue_capacity
                 : 2 * static_cast<std::size_t>(
                           workers > 0 ? workers
                                       : hardwareConcurrency())),
      pinWorkers_(pin_workers)
{
    const int count = workers > 0 ? workers : hardwareConcurrency();
    cells_.reserve(static_cast<std::size_t>(count));
    threads_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        cells_.push_back(std::make_unique<WorkerCell>());
    for (int i = 0; i < count; ++i)
        threads_.emplace_back(
            [this, i] { workerMain(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    if (joined_)
        return;
    joined_ = true;
    queue_.close();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::workerMain(std::size_t index)
{
    tls_worker_pool = this;
    tls_worker_index = static_cast<int>(index);
    if (pinWorkers_ && pinCurrentThread(index))
        pinned_.fetch_add(1, std::memory_order_relaxed);
    WorkerCell &cell = *cells_[index];

    // Latched once per worker: the session (installed before the pool
    // per the obs::CliScope contract) outlives every worker thread.
    obs::TraceSession *trace = obs::activeTrace();
    int track = 0;
    if (trace) {
        track = trace->threadTrack(
            suit::util::sformat("worker %zu", index));
        trace->begin(obs::TraceSession::kHostPid, track,
                     trace->hostNowUs(), "worker", "exec",
                     {{"index", static_cast<std::uint64_t>(index)}});
    }
    obs::Registry &reg = obs::metrics();
    static const std::vector<double> kWaitUsBounds{
        1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6};
    static const std::vector<double> kDepthBounds{
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};

    for (;;) {
        const auto wait_start = Clock::now();
        std::optional<Task> task = queue_.pop();
        if (!task)
            break;
        // Only waits that yielded a task count: the final blocked
        // pop() that observes shutdown is idle time, not queue wait,
        // and used to inflate the footer's "queue wait" column.
        const auto job_start = Clock::now();
        const std::uint64_t wait_ns = elapsedNs(wait_start, job_start);
        cell.queueWaitNs.fetch_add(wait_ns, std::memory_order_relaxed);
        if (reg.enabled()) {
            static const obs::MetricId wait_us =
                reg.histogram("exec.job_wait_us", kWaitUsBounds);
            static const obs::MetricId depth =
                reg.histogram("exec.queue_depth", kDepthBounds);
            reg.observe(wait_us,
                        static_cast<double>(wait_ns) * 1e-3);
            reg.observe(depth,
                        static_cast<double>(queue_.size()));
        }
        task->body();
        cell.busyNs.fetch_add(elapsedNs(job_start, Clock::now()),
                              std::memory_order_relaxed);
        cell.jobsRun.fetch_add(1, std::memory_order_relaxed);
        if (task->notify)
            task->notify();
    }

    // Fold this worker's lifetime counters into the registry on the
    // way out, so a CLI's --metrics dump aggregates the whole pool.
    if (reg.enabled()) {
        reg.add(reg.counter("exec.workers"));
        reg.add(reg.counter("exec.jobs"),
                cell.jobsRun.load(std::memory_order_relaxed));
        reg.add(reg.counter("exec.queue_wait_us"),
                cell.queueWaitNs.load(std::memory_order_relaxed) /
                    1000);
        reg.add(reg.counter("exec.busy_us"),
                cell.busyNs.load(std::memory_order_relaxed) / 1000);
    }
    if (trace)
        trace->end(obs::TraceSession::kHostPid, track,
                   trace->hostNowUs());
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::move(job));
    std::future<void> future = task->get_future();
    const bool accepted =
        queue_.push({[task] { (*task)(); }, nullptr});
    SUIT_ASSERT(accepted, "submit() on a destroyed thread pool");
    return future;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    // A worker of this pool calling back into parallelFor() would
    // block on the bounded queue / completion latch while occupying
    // the only threads that could make progress — a silent deadlock.
    // Workers of *other* pools are fine.
    SUIT_ASSERT(tls_worker_pool != this,
                "nested parallelFor() from inside a worker of the "
                "same pool would deadlock; run the inner loop inline "
                "or on a separate pool");

    if (n == 0)
        return;

    // Exceptions land in index-addressed slots so the rethrow below
    // picks the lowest failing index no matter how the workers were
    // scheduled.
    std::vector<std::exception_ptr> errors(n);
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t done = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const bool accepted = queue_.push(
            {[&, i] {
                 try {
                     body(i);
                 } catch (...) {
                     errors[i] = std::current_exception();
                 }
             },
             [&] {
                 std::lock_guard lock(done_mu);
                 ++done;
                 done_cv.notify_one();
             }});
        SUIT_ASSERT(accepted,
                    "parallelFor() on a destroyed thread pool");
    }

    std::unique_lock lock(done_mu);
    done_cv.wait(lock, [&] { return done == n; });

    for (std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
}

std::vector<WorkerStats>
ThreadPool::stats() const
{
    std::vector<WorkerStats> out;
    out.reserve(cells_.size());
    for (const auto &cell : cells_) {
        WorkerStats s;
        s.jobsRun = cell->jobsRun.load(std::memory_order_relaxed);
        s.queueWaitS =
            1e-9 * static_cast<double>(
                       cell->queueWaitNs.load(std::memory_order_relaxed));
        s.busyS =
            1e-9 * static_cast<double>(
                       cell->busyNs.load(std::memory_order_relaxed));
        out.push_back(s);
    }
    return out;
}

} // namespace suit::exec
