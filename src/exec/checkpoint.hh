/**
 * @file
 * Crash-safe checkpoint journal for sweep grids.
 *
 * A CheckpointJournal persists one record per completed (or
 * terminally failed) grid cell so an interrupted sweep can resume
 * without re-running finished cells.  The on-disk layout is an
 * append-structured stream:
 *
 *   header:  magic "SUITJRNL", format version, grid fingerprint
 *            (axis hash + cell count)
 *   records: [payload length u32][payload checksum u32][payload]
 *   payload: [cell index u64][status u8]
 *            status 0 (ok):     serialized DomainResult
 *            status 1 (failed): error string (u32 length + bytes)
 *            status 2 (blob):   opaque bytes (u32 length + bytes);
 *                               the engine owning the journal defines
 *                               the encoding (the fleet engine stores
 *                               serialized shard accumulators)
 *
 * Durability: a flush rewrites the journal image to `<path>.tmp`,
 * flushes it to the kernel (fflush + fsync) and atomically rename()s
 * it over `<path>`.  A kill at *any* instant — including mid-record —
 * therefore leaves either the previous or the new journal on disk,
 * never a torn one.  By default every append() flushes; a batched
 * flush interval (setFlushInterval / --checkpoint-flush) amortises
 * the cycle over N records, bounding the loss after a crash to the
 * last unflushed batch.  The loader is nevertheless
 * defensive: records are length- and checksum-framed, and load()
 * keeps the longest valid prefix of a truncated or corrupted file
 * (reporting the dropped byte count) instead of refusing it, so even
 * a journal damaged outside our control resumes as far as possible.
 *
 * The grid fingerprint ties a journal to the exact grid that
 * produced it: SweepEngine hashes every cell's CPU, core count,
 * strategy (kind + parameters), offset, run mode, workload and seed.
 * Resuming against a journal whose fingerprint differs is refused —
 * silently mixing results of two different grids would be far worse
 * than re-running one.
 */

#ifndef SUIT_EXEC_CHECKPOINT_HH
#define SUIT_EXEC_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/domain_sim.hh"

namespace suit::exec {

/** FNV-1a over a byte range; chainable via @p seed. */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = 0xCBF29CE484222325ULL);

/** Identity of a sweep grid: cell count + hash over every axis. */
struct GridFingerprint
{
    /** Number of grid cells. */
    std::uint64_t cells = 0;
    /** Order-sensitive hash over every cell's configuration. */
    std::uint64_t hash = 0;

    bool operator==(const GridFingerprint &) const = default;
};

/** One journal entry: the outcome of a single grid cell. */
struct CellRecord
{
    /** Grid cell index (position in the job list). */
    std::uint64_t index = 0;
    /** True if the cell exhausted its retries and was given up on. */
    bool failed = false;
    /** Failure description (failed records only). */
    std::string error;
    /** Cell result (ok records only). */
    suit::sim::DomainResult result;
    /**
     * True for an opaque-payload record (status 2): `blob` carries
     * engine-defined bytes instead of a DomainResult.  Mutually
     * exclusive with `failed`.
     */
    bool isBlob = false;
    /** Opaque payload (blob records only). */
    std::string blob;

    /** A blob record carrying @p bytes for cell @p cell. */
    static CellRecord blobRecord(std::uint64_t cell,
                                 std::string bytes)
    {
        CellRecord record;
        record.index = cell;
        record.isBlob = true;
        record.blob = std::move(bytes);
        return record;
    }
};

/** Unusable journal file (bad magic/version, unreadable, mismatch). */
class JournalError : public std::runtime_error
{
  public:
    explicit JournalError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Everything recovered from a journal file. */
struct JournalContents
{
    /** Fingerprint of the grid the journal belongs to. */
    GridFingerprint fingerprint;
    /** Complete records, in file order. */
    std::vector<CellRecord> records;
    /**
     * Bytes of a torn or corrupt tail that were dropped during
     * recovery (0 for a clean journal).
     */
    std::size_t droppedBytes = 0;
};

/**
 * Append-only results journal with atomic-rewrite durability.
 *
 * A default-constructed journal is inert: append() is a no-op, so
 * engine code can call it unconditionally.  append() is thread-safe —
 * sweep workers complete cells concurrently.
 */
class CheckpointJournal
{
  public:
    CheckpointJournal() = default;

    /** Best-effort flush of buffered records (never throws). */
    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** True once start() bound the journal to a file. */
    bool active() const { return !path_.empty(); }

    /**
     * Flush to disk every @p every appends (>= 1).  The default, 1,
     * writes each record as it completes; larger intervals batch the
     * rewrite + fsync + rename cycle, trading at most `every - 1`
     * re-run cells after a crash for far fewer synchronous writes.
     * Buffered records are strictly ordered after flushed ones, so
     * recovery still yields the longest valid record prefix.  Set
     * before appending (typically right after start()).
     */
    void setFlushInterval(int every);

    /**
     * Bind to @p path and write a fresh header (plus @p seed records
     * recovered by a resume), replacing any existing file.
     */
    void start(const std::string &path, const GridFingerprint &fp,
               std::vector<CellRecord> seed = {});

    /**
     * Append one record (thread-safe).  With the default flush
     * interval the record is durable on return; with a batched
     * interval it becomes durable at the next interval boundary, an
     * explicit flush(), or journal destruction.
     */
    void append(const CellRecord &record);

    /**
     * Write any buffered records to disk now (thread-safe, no-op on
     * an inactive or fully flushed journal).  Engines call this when
     * a run ends — normally or cancelled — so the journal on disk
     * reflects every completed cell regardless of flush interval.
     */
    void flush();

    /**
     * Parse the journal at @p path.
     *
     * @throws JournalError if the file is missing, unreadable, or
     *         not a journal (bad magic / unsupported version).
     *         Truncated or corrupt *records* do not throw: the valid
     *         prefix is returned and droppedBytes reports the loss.
     */
    static JournalContents load(const std::string &path);

  private:
    /** Write image_ via temp file + flush + atomic rename. */
    void writeImage();

    std::mutex mu_;
    std::string path_;
    std::string image_; //!< serialized header + records
    int flushEvery_ = 1; //!< appends per synchronous flush
    int pending_ = 0; //!< records appended since the last flush
};

} // namespace suit::exec

#endif // SUIT_EXEC_CHECKPOINT_HH
