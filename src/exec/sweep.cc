#include "exec/sweep.hh"

#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace suit::exec {

using suit::sim::DomainResult;
using suit::sim::EvalConfig;

SweepEngine::SweepEngine(SweepOptions options) : opts_(options)
{
    const int requested = opts_.jobs == 0
                              ? ThreadPool::hardwareConcurrency()
                              : opts_.jobs;
    SUIT_ASSERT(requested >= 1, "worker count must be >= 1, got %d",
                requested);
    if (requested > 1) {
        pool_ = std::make_unique<ThreadPool>(requested,
                                             opts_.queueCapacity);
    }
}

SweepEngine::~SweepEngine() = default;

int
SweepEngine::jobs() const
{
    return pool_ ? pool_->workers() : 1;
}

std::vector<DomainResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    std::vector<DomainResult> results(jobs.size());
    const auto cell = [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        SUIT_ASSERT(job.profile != nullptr,
                    "sweep job %zu ('%s') has no workload", i,
                    job.label.c_str());
        results[i] =
            suit::sim::runWorkload(job.config, *job.profile, traces_);
    };
    if (pool_) {
        pool_->parallelFor(jobs.size(), cell);
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            cell(i);
    }
    return results;
}

std::vector<WorkerStats>
SweepEngine::workerStats() const
{
    return pool_ ? pool_->stats() : std::vector<WorkerStats>{};
}

std::string
SweepEngine::workerFooter() const
{
    if (!pool_)
        return "sweep: serial reference path (1 job)\n";

    suit::util::TablePrinter t(
        {"worker", "jobs", "queue wait", "busy"});
    const std::vector<WorkerStats> stats = pool_->stats();
    std::uint64_t total_jobs = 0;
    double total_busy = 0.0;
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const WorkerStats &s = stats[i];
        t.addRow({suit::util::sformat("#%zu", i),
                  suit::util::sformat(
                      "%llu",
                      static_cast<unsigned long long>(s.jobsRun)),
                  suit::util::sformat("%.3f s", s.queueWaitS),
                  suit::util::sformat("%.3f s", s.busyS)});
        total_jobs += s.jobsRun;
        total_busy += s.busyS;
    }
    t.addSeparator();
    t.addRow({"all",
              suit::util::sformat(
                  "%llu", static_cast<unsigned long long>(total_jobs)),
              "", suit::util::sformat("%.3f s", total_busy)});
    return t.render();
}

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t index)
{
    // Golden-ratio mixing plus one splitmix-seeded draw decorrelates
    // (root, index) pairs in O(1), without advancing a shared
    // generator in grid order.
    suit::util::Rng rng(root ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
    return rng.next();
}

} // namespace suit::exec

namespace suit::sim {

std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<trace::WorkloadProfile> &profiles,
                 suit::exec::SweepEngine &engine)
{
    std::vector<suit::exec::SweepJob> jobs;
    jobs.reserve(profiles.size());
    for (const trace::WorkloadProfile &p : profiles)
        jobs.push_back({p.name, config, &p});

    const std::vector<DomainResult> results = engine.run(jobs);

    std::vector<WorkloadRow> rows;
    rows.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        rows.push_back({profiles[i].name, results[i]});
    return rows;
}

std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<trace::WorkloadProfile> &profiles,
                 int jobs)
{
    suit::exec::SweepEngine engine({jobs, 0});
    return runSuiteParallel(config, profiles, engine);
}

} // namespace suit::sim
