#include "exec/sweep.hh"

#include <algorithm>
#include <bit>
#include <exception>
#include <mutex>

#include "obs/flight.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::exec {

using suit::sim::DomainResult;
using suit::sim::EvalConfig;

namespace {

std::string
describeException(const std::exception_ptr &err)
{
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

} // namespace

SweepEngine::SweepEngine(suit::runtime::Session &session)
    : session_(session)
{
}

SweepEngine::~SweepEngine() = default;

int
SweepEngine::jobs() const
{
    return session_.jobs();
}

std::vector<DomainResult>
SweepEngine::run(const std::vector<SweepJob> &jobs)
{
    suit::runtime::RunContext ctx;
    RunPolicy fail_fast;
    fail_fast.strict = true;
    return run(jobs, ctx, fail_fast).results;
}

SweepOutcome
SweepEngine::run(const std::vector<SweepJob> &jobs,
                 suit::runtime::RunContext &ctx,
                 const RunPolicy &policy)
{
    const auto cell = [&](std::size_t i) {
        const SweepJob &job = jobs[i];
        SUIT_ASSERT(job.profile != nullptr,
                    "sweep job %zu ('%s') has no workload", i,
                    job.label.c_str());
        EvalConfig config = job.config;
        config.cancel = &ctx.token();
        // Evaluate in the worker's session workspace (simulator and
        // scratch reused across cells); the copy out is the cell's
        // only steady-state allocation, and the journal/outcome need
        // an owning result anyway.
        return DomainResult(suit::sim::runWorkload(
            config, *job.profile, session_.traceCache(),
            session_.workspace()));
    };
    SweepOutcome outcome = runCells(jobs.size(), cell, ctx, policy,
                                    fingerprintJobs(jobs));
    for (CellFailure &failure : outcome.failures)
        failure.label = jobs[failure.index].label;
    return outcome;
}

SweepOutcome
SweepEngine::runCells(
    std::size_t n,
    const std::function<suit::sim::DomainResult(std::size_t)> &cell,
    suit::runtime::RunContext &ctx, const RunPolicy &policy,
    const GridFingerprint &fingerprint)
{
    SUIT_ASSERT(policy.retries >= 0, "negative retry count %d",
                policy.retries);
    const suit::runtime::CheckpointPolicy &ckpt = ctx.checkpoint;
    if (ckpt.resume && ckpt.path.empty())
        throw JournalError("resume requires a checkpoint path");

    SweepOutcome out;
    out.results.resize(n);
    out.done.assign(n, 0);

    CheckpointJournal journal;
    if (!ckpt.path.empty()) {
        std::vector<CellRecord> seed;
        if (ckpt.resume) {
            JournalContents loaded =
                CheckpointJournal::load(ckpt.path);
            if (!(loaded.fingerprint == fingerprint))
                throw JournalError(suit::util::sformat(
                    "checkpoint '%s' belongs to a different grid "
                    "(journal: %llu cells, fingerprint %016llx; this "
                    "run: %llu cells, fingerprint %016llx) — "
                    "refusing to mix results",
                    ckpt.path.c_str(),
                    static_cast<unsigned long long>(
                        loaded.fingerprint.cells),
                    static_cast<unsigned long long>(
                        loaded.fingerprint.hash),
                    static_cast<unsigned long long>(fingerprint.cells),
                    static_cast<unsigned long long>(fingerprint.hash)));
            if (loaded.droppedBytes != 0)
                suit::util::warn(
                    "checkpoint '%s': dropped %zu trailing bytes of "
                    "a torn record; the affected cell will re-run",
                    ckpt.path.c_str(), loaded.droppedBytes);
            // Completed cells seed the results; failed records are
            // dropped so the resume re-attempts those cells.
            for (CellRecord &record : loaded.records) {
                if (record.failed || record.index >= n ||
                    out.done[record.index])
                    continue;
                out.results[record.index] = std::move(record.result);
                out.done[record.index] = 1;
                ++out.restored;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (out.done[i])
                    seed.push_back({i, false, "", out.results[i], false, ""});
            }
        }
        journal.start(ckpt.path, fingerprint, std::move(seed));
        journal.setFlushInterval(ckpt.flushInterval);
    }

    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> skipped{0};
    std::atomic<std::uint64_t> retried{0};
    std::mutex failures_mu;
    std::vector<CellFailure> failures;

    // Latched by the RunContext at its construction: workers observe
    // the same session, so pool and serial mode trace identically.
    obs::TraceSession *const trace = ctx.trace();
    const suit::runtime::CancelToken &token = ctx.token();

    const auto runOne = [&](std::size_t i) {
        if (out.done[i])
            return; // restored from the journal
        if (token.cancelled()) {
            skipped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        obs::FlightSpan span("sweep.cell", "exec");
        const double cell_start = trace ? trace->hostNowUs() : 0.0;
        const int attempts = policy.retries + 1;
        int attempts_made = 0;
        std::exception_ptr error;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            if (attempt > 0)
                retried.fetch_add(1, std::memory_order_relaxed);
            ++attempts_made;
            try {
                out.results[i] = cell(i);
                out.done[i] = 1;
                executed.fetch_add(1, std::memory_order_relaxed);
                journal.append({i, false, "", out.results[i], false, ""});
                error = nullptr;
                break;
            } catch (const suit::runtime::Cancelled &) {
                // The token tripped mid-cell: the cell never ran as
                // far as the journal and the outcome are concerned —
                // a resume recomputes it from scratch, bit-identical.
                skipped.fetch_add(1, std::memory_order_relaxed);
                return;
            } catch (...) {
                error = std::current_exception();
            }
        }
        if (trace) {
            const int track = trace->threadTrack("main");
            const double now_us = trace->hostNowUs();
            trace->complete(
                obs::TraceSession::kHostPid, track, cell_start,
                now_us - cell_start, "cell", "sweep",
                {{"index", static_cast<std::uint64_t>(i)},
                 {"attempts", attempts_made},
                 {"ok", error ? 0 : 1}});
        }
        if (error) {
            if (policy.strict)
                std::rethrow_exception(error);
            const std::string what = describeException(error);
            {
                std::lock_guard lock(failures_mu);
                failures.push_back({i, "", what, attempts});
            }
            journal.append({i, true, what, {}, false, ""});
        }
        if (policy.onCellDone)
            policy.onCellDone(i);
    };

    if (ThreadPool *pool = session_.pool()) {
        pool->parallelFor(n, runOne);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            runOne(i);
    }
    // Land any batch tail now (including after a cancellation), so
    // every completed cell is on disk for a resume.
    journal.flush();

    out.executed = executed.load();
    out.skipped = skipped.load();
    out.interrupted = token.cancelled();
    std::sort(failures.begin(), failures.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.index < b.index;
              });
    out.failures = std::move(failures);

    obs::Registry &reg = obs::metrics();
    if (reg.enabled()) {
        reg.add(reg.counter("sweep.cells.executed"), out.executed);
        reg.add(reg.counter("sweep.cells.restored"), out.restored);
        reg.add(reg.counter("sweep.cells.skipped"), out.skipped);
        reg.add(reg.counter("sweep.cells.failed"),
                out.failures.size());
        reg.add(reg.counter("sweep.cells.retries"), retried.load());
    }
    return out;
}

GridFingerprint
fingerprintJobs(const std::vector<SweepJob> &jobs)
{
    std::uint64_t hash = fnv1a64(nullptr, 0);
    const auto mix_u64 = [&](std::uint64_t v) {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] =
                static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
        hash = fnv1a64(bytes, sizeof(bytes), hash);
    };
    const auto mix_double = [&](double d) {
        mix_u64(std::bit_cast<std::uint64_t>(d));
    };
    const auto mix_string = [&](const std::string &s) {
        mix_u64(s.size());
        hash = fnv1a64(s.data(), s.size(), hash);
    };

    for (const SweepJob &job : jobs) {
        const EvalConfig &cfg = job.config;
        mix_string(job.label);
        mix_string(cfg.cpu != nullptr ? cfg.cpu->name() : "");
        mix_string(cfg.cpu != nullptr ? cfg.cpu->label() : "");
        mix_u64(static_cast<std::uint64_t>(cfg.cores));
        mix_double(cfg.offsetMv);
        mix_u64(static_cast<std::uint64_t>(cfg.mode));
        mix_u64(static_cast<std::uint64_t>(cfg.strategy));
        mix_double(cfg.params.deadlineUs);
        mix_double(cfg.params.timeSpanUs);
        mix_u64(static_cast<std::uint64_t>(cfg.params.maxExceptionCount));
        mix_double(cfg.params.deadlineFactor);
        mix_u64(cfg.seed);
        mix_string(job.profile != nullptr ? job.profile->name : "");
    }
    return {jobs.size(), hash};
}

std::uint64_t
deriveSeed(std::uint64_t root, std::uint64_t index)
{
    // Golden-ratio mixing plus one splitmix-seeded draw decorrelates
    // (root, index) pairs in O(1), without advancing a shared
    // generator in grid order.
    suit::util::Rng rng(root ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
    return rng.next();
}

} // namespace suit::exec

namespace suit::sim {

std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<trace::WorkloadProfile> &profiles,
                 suit::exec::SweepEngine &engine)
{
    std::vector<suit::exec::SweepJob> jobs;
    jobs.reserve(profiles.size());
    for (const trace::WorkloadProfile &p : profiles)
        jobs.push_back({p.name, config, &p});

    const std::vector<DomainResult> results = engine.run(jobs);

    std::vector<WorkloadRow> rows;
    rows.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i)
        rows.push_back({profiles[i].name, results[i]});
    return rows;
}

std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<trace::WorkloadProfile> &profiles,
                 int jobs)
{
    suit::runtime::SessionConfig scfg;
    scfg.jobs = jobs;
    suit::runtime::Session session(scfg);
    suit::exec::SweepEngine engine(session);
    return runSuiteParallel(config, profiles, engine);
}

} // namespace suit::sim
