/**
 * @file
 * SweepEngine: deterministic parallel execution of experiment grids.
 *
 * Every headline experiment (Table 6, Table 7, Table 8, Fig. 16, the
 * ablations) is a Cartesian sweep of CPU x cores x strategy x offset
 * x workload cells, each cell an independent runWorkload() call.
 * SweepEngine executes such a job list across a ThreadPool and
 * returns the results *in job order*, so the output of a parallel
 * sweep is bit-identical to running the same list serially:
 *
 *  - every job is a pure function of its SweepJob (trace generation
 *    and simulation jitter derive only from EvalConfig::seed), so no
 *    job observes another job's scheduling;
 *  - results are written into index-addressed slots, never into a
 *    completion-ordered container;
 *  - the shared TraceCache is keyed by value, not by arrival order —
 *    whichever worker generates a trace first, every worker reads
 *    the same bytes.
 *
 * `--jobs 1` (SweepOptions::jobs == 1) bypasses the pool entirely
 * and runs the jobs inline: the serial reference path used by the
 * determinism tests.
 */

#ifndef SUIT_EXEC_SWEEP_HH
#define SUIT_EXEC_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/checkpoint.hh"
#include "exec/thread_pool.hh"
#include "sim/evaluation.hh"
#include "sim/trace_cache.hh"

namespace suit::exec {

/** One cell of an experiment grid. */
struct SweepJob
{
    /** Free-form cell label (carried through to the results). */
    std::string label;
    /** Full evaluation configuration (CPU pointer not owned). */
    suit::sim::EvalConfig config;
    /** Workload to run (not owned; must outlive the sweep). */
    const suit::trace::WorkloadProfile *profile = nullptr;
};

/** Engine configuration. */
struct SweepOptions
{
    /**
     * Worker count: 0 = ThreadPool::hardwareConcurrency(),
     * 1 = serial in-line execution (reference path), n > 1 = pool of
     * n workers.
     */
    int jobs = 0;
    /** Task queue bound; 0 = 2 x workers. */
    std::size_t queueCapacity = 0;
};

/**
 * Fault-tolerance and checkpointing policy of one run() invocation.
 *
 * The default policy matches PR-1 semantics minus fail-fast: no
 * journal, no retries, failures recorded instead of thrown.  Set
 * `strict` to restore exception propagation.
 */
struct RunPolicy
{
    /** Journal file; empty = no checkpointing. */
    std::string checkpointPath;
    /**
     * Load an existing journal first and only run the cells it does
     * not cover.  Requires checkpointPath; refuses (JournalError) a
     * journal whose grid fingerprint differs.  Previously *failed*
     * cells are re-attempted.
     */
    bool resume = false;
    /** Extra attempts for a throwing cell before giving up on it. */
    int retries = 0;
    /**
     * Fail-fast: rethrow the lowest-index cell exception (after
     * retries) instead of recording the cell as failed.
     */
    bool strict = false;
    /**
     * Cooperative interrupt: once *stop is true, cells that have not
     * started are skipped (in-flight cells finish and are journaled).
     * Used for SIGINT-safe shutdown in suit_sweep.
     */
    const std::atomic<bool> *stop = nullptr;
    /**
     * Called after each cell settles (completed or failed), with the
     * cell index.  Runs on worker threads; must be thread-safe.
     */
    std::function<void(std::size_t)> onCellDone;
};

/** One grid cell that exhausted its retries. */
struct CellFailure
{
    /** Cell index in the job list. */
    std::size_t index = 0;
    /** Cell label (empty for runCells()). */
    std::string label;
    /** what() of the final attempt's exception. */
    std::string error;
    /** Attempts made (1 + retries). */
    int attempts = 0;
};

/** Outcome of a policy-driven run. */
struct SweepOutcome
{
    /** Index-addressed results; failed/skipped slots are default. */
    std::vector<suit::sim::DomainResult> results;
    /** 1 where results[i] holds a completed cell. */
    std::vector<std::uint8_t> done;
    /** Cells given up on after retries, sorted by index. */
    std::vector<CellFailure> failures;
    /** Cells executed by this invocation. */
    std::size_t executed = 0;
    /** Cells restored from the journal (resume only). */
    std::size_t restored = 0;
    /** Cells skipped because the stop flag was raised. */
    std::size_t skipped = 0;
    /** True if the stop flag ended the run early. */
    bool interrupted = false;

    /** Every cell completed. */
    bool complete() const
    {
        return failures.empty() && skipped == 0;
    }
};

/** Executes SweepJob lists with deterministic result order. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions options = {});
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /**
     * Run every job and return results in job order.  Bit-identical
     * for any worker count.  Exceptions out of a job propagate
     * (lowest job index first).
     */
    std::vector<suit::sim::DomainResult>
    run(const std::vector<SweepJob> &jobs);

    /**
     * Run every job under @p policy: optional checkpoint journal,
     * resume, per-cell retries and graceful failure recording.
     * Completed slots are bit-identical to a serial fail-fast run for
     * any worker count and any number of prior interruptions.
     *
     * @throws JournalError on an unusable or mismatching journal;
     *         rethrows cell exceptions only when policy.strict.
     */
    SweepOutcome run(const std::vector<SweepJob> &jobs,
                     const RunPolicy &policy);

    /**
     * Policy-driven execution of @p n abstract cells (the core of
     * run(jobs, policy), exposed for tests and non-SweepJob grids).
     * @p fingerprint identifies the grid in the journal.
     */
    SweepOutcome
    runCells(std::size_t n,
             const std::function<suit::sim::DomainResult(std::size_t)>
                 &cell,
             const RunPolicy &policy,
             const GridFingerprint &fingerprint);

    /** Effective worker count (1 when running serially). */
    int jobs() const;

    /**
     * The engine's trace cache, shared by all jobs of all run()
     * calls: repeated (cpu, workload, seed) cells — e.g. Table 6's
     * strategy x offset grid — generate each trace once.
     */
    suit::sim::TraceCache &traceCache() { return traces_; }

    /**
     * Per-worker counters accumulated over every run() so far
     * (empty in serial mode).
     */
    std::vector<WorkerStats> workerStats() const;

    /**
     * Render the per-worker counters as a footer table
     * ("worker | jobs | queue wait | busy"), or a one-line serial
     * notice in serial mode.
     */
    std::string workerFooter() const;

  private:
    SweepOptions opts_;
    suit::sim::TraceCache traces_;
    std::unique_ptr<ThreadPool> pool_; //!< null in serial mode
};

/**
 * Fingerprint of a job list: an order-sensitive hash over every
 * cell's CPU, core count, strategy kind + parameters, offset, run
 * mode, seed, workload and label.  Two grids resume-compatibly iff
 * their fingerprints match.
 */
GridFingerprint fingerprintJobs(const std::vector<SweepJob> &jobs);

/**
 * Derive the seed of grid cell @p index from @p root.
 *
 * Used by grid-enumerating frontends (suit_sweep) so that every cell
 * gets a decorrelated stream while remaining a pure function of
 * (root, index) — independent of worker count and scheduling.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t index);

} // namespace suit::exec

namespace suit::sim {

/**
 * Parallel counterpart of runSuite(): one job per profile, executed
 * on @p engine, rows returned in profile order.  Bit-identical to
 * runSuite() for any worker count (verified by tests/exec).
 *
 * Declared in the sim namespace next to runSuite but defined in the
 * suit_exec library, which layers above suit_sim — callers link
 * suit_exec.
 */
std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<suit::trace::WorkloadProfile> &profiles,
                 suit::exec::SweepEngine &engine);

/** Convenience overload running on a throwaway engine. */
std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<suit::trace::WorkloadProfile> &profiles,
                 int jobs = 0);

} // namespace suit::sim

#endif // SUIT_EXEC_SWEEP_HH
