/**
 * @file
 * SweepEngine: deterministic parallel execution of experiment grids.
 *
 * Every headline experiment (Table 6, Table 7, Table 8, Fig. 16, the
 * ablations) is a Cartesian sweep of CPU x cores x strategy x offset
 * x workload cells, each cell an independent runWorkload() call.
 * SweepEngine executes such a job list across the borrowed
 * runtime::Session's ThreadPool and returns the results *in job
 * order*, so the output of a parallel sweep is bit-identical to
 * running the same list serially:
 *
 *  - every job is a pure function of its SweepJob (trace generation
 *    and simulation jitter derive only from EvalConfig::seed), so no
 *    job observes another job's scheduling;
 *  - results are written into index-addressed slots, never into a
 *    completion-ordered container;
 *  - the session's shared TraceCache is keyed by value, not by
 *    arrival order — whichever worker generates a trace first, every
 *    worker reads the same bytes (and an LRU-evicted trace
 *    regenerates to the same bytes, being a pure function of its
 *    key).
 *
 * A serial Session (jobs == 1, no pool) runs the jobs inline: the
 * serial reference path used by the determinism tests.  Per-run
 * state — cancellation, deadline, journal policy — arrives through a
 * runtime::RunContext; a tripped token skips unstarted cells and
 * aborts in-flight cells mid-simulation (runtime::Cancelled), which
 * the engine accounts as skipped, never as failed or journaled.
 */

#ifndef SUIT_EXEC_SWEEP_HH
#define SUIT_EXEC_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exec/checkpoint.hh"
#include "exec/thread_pool.hh"
#include "runtime/run_context.hh"
#include "runtime/session.hh"
#include "sim/evaluation.hh"
#include "sim/trace_cache.hh"

namespace suit::exec {

/** One cell of an experiment grid. */
struct SweepJob
{
    /** Free-form cell label (carried through to the results). */
    std::string label;
    /** Full evaluation configuration (CPU pointer not owned). */
    suit::sim::EvalConfig config;
    /** Workload to run (not owned; must outlive the sweep). */
    const suit::trace::WorkloadProfile *profile = nullptr;
};

/**
 * Fault-tolerance policy of one run() invocation.
 *
 * The default policy matches PR-1 semantics minus fail-fast: no
 * retries, failures recorded instead of thrown.  Set `strict` to
 * restore exception propagation.  Checkpointing and interruption
 * moved to runtime::RunContext (checkpoint policy + cancel token).
 */
struct RunPolicy
{
    /** Extra attempts for a throwing cell before giving up on it. */
    int retries = 0;
    /**
     * Fail-fast: rethrow the lowest-index cell exception (after
     * retries) instead of recording the cell as failed.
     */
    bool strict = false;
    /**
     * Called after each cell settles (completed or failed), with the
     * cell index.  Runs on worker threads; must be thread-safe.
     * Not called for skipped/cancelled cells.
     */
    std::function<void(std::size_t)> onCellDone;
};

/** One grid cell that exhausted its retries. */
struct CellFailure
{
    /** Cell index in the job list. */
    std::size_t index = 0;
    /** Cell label (empty for runCells()). */
    std::string label;
    /** what() of the final attempt's exception. */
    std::string error;
    /** Attempts made (1 + retries). */
    int attempts = 0;
};

/** Outcome of a policy-driven run. */
struct SweepOutcome
{
    /** Index-addressed results; failed/skipped slots are default. */
    std::vector<suit::sim::DomainResult> results;
    /** 1 where results[i] holds a completed cell. */
    std::vector<std::uint8_t> done;
    /** Cells given up on after retries, sorted by index. */
    std::vector<CellFailure> failures;
    /** Cells executed by this invocation. */
    std::size_t executed = 0;
    /** Cells restored from the journal (resume only). */
    std::size_t restored = 0;
    /** Cells skipped or aborted because the token tripped. */
    std::size_t skipped = 0;
    /** True if the cancel token ended the run early. */
    bool interrupted = false;

    /** Every cell completed. */
    bool complete() const
    {
        return failures.empty() && skipped == 0;
    }
};

/** Executes SweepJob lists with deterministic result order. */
class SweepEngine
{
  public:
    /** Borrow @p session's pool and trace cache (must outlive us). */
    explicit SweepEngine(suit::runtime::Session &session);
    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /**
     * Run every job and return results in job order.  Bit-identical
     * for any worker count.  Exceptions out of a job propagate
     * (lowest job index first).  Uses a throwaway RunContext: no
     * journal, no cancellation.
     */
    std::vector<suit::sim::DomainResult>
    run(const std::vector<SweepJob> &jobs);

    /**
     * Run every job under @p ctx (journal policy + cancellation) and
     * @p policy (retries / strictness): optional checkpoint journal,
     * resume, per-cell retries and graceful failure recording.
     * Completed slots are bit-identical to a serial fail-fast run for
     * any worker count and any number of prior interruptions.
     *
     * @throws JournalError on an unusable or mismatching journal;
     *         rethrows cell exceptions only when policy.strict.
     */
    SweepOutcome run(const std::vector<SweepJob> &jobs,
                     suit::runtime::RunContext &ctx,
                     const RunPolicy &policy = {});

    /**
     * Policy-driven execution of @p n abstract cells (the core of
     * run(jobs, ctx, policy), exposed for tests and non-SweepJob
     * grids).  @p fingerprint identifies the grid in the journal.
     */
    SweepOutcome
    runCells(std::size_t n,
             const std::function<suit::sim::DomainResult(std::size_t)>
                 &cell,
             suit::runtime::RunContext &ctx,
             const RunPolicy &policy,
             const GridFingerprint &fingerprint);

    /** Effective worker count (1 when running serially). */
    int jobs() const;

    /** The borrowed session. */
    suit::runtime::Session &session() { return session_; }

    /**
     * The session's trace cache, shared by all jobs of all run()
     * calls: repeated (cpu, workload, seed) cells — e.g. Table 6's
     * strategy x offset grid — generate each trace once (modulo LRU
     * eviction, which regenerates identically).
     */
    suit::sim::TraceCache &traceCache()
    {
        return session_.traceCache();
    }

    /** Per-worker counters (empty in serial mode). */
    std::vector<WorkerStats> workerStats() const
    {
        return session_.workerStats();
    }

    /** Worker counter footer table / serial notice. */
    std::string workerFooter() const
    {
        return session_.workerFooter();
    }

  private:
    suit::runtime::Session &session_;
};

/**
 * Fingerprint of a job list: an order-sensitive hash over every
 * cell's CPU, core count, strategy kind + parameters, offset, run
 * mode, seed, workload and label.  Two grids resume-compatibly iff
 * their fingerprints match.
 */
GridFingerprint fingerprintJobs(const std::vector<SweepJob> &jobs);

/**
 * Derive the seed of grid cell @p index from @p root.
 *
 * Used by grid-enumerating frontends (suit_sweep) so that every cell
 * gets a decorrelated stream while remaining a pure function of
 * (root, index) — independent of worker count and scheduling.
 */
std::uint64_t deriveSeed(std::uint64_t root, std::uint64_t index);

} // namespace suit::exec

namespace suit::sim {

/**
 * Parallel counterpart of runSuite(): one job per profile, executed
 * on @p engine, rows returned in profile order.  Bit-identical to
 * runSuite() for any worker count (verified by tests/exec).
 *
 * Declared in the sim namespace next to runSuite but defined in the
 * suit_runtime library, which layers above suit_sim — callers link
 * suit_runtime.
 */
std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<suit::trace::WorkloadProfile> &profiles,
                 suit::exec::SweepEngine &engine);

/** Convenience overload running on a throwaway session. */
std::vector<WorkloadRow>
runSuiteParallel(const EvalConfig &config,
                 const std::vector<suit::trace::WorkloadProfile> &profiles,
                 int jobs = 0);

} // namespace suit::sim

#endif // SUIT_EXEC_SWEEP_HH
