/**
 * @file
 * Bounded multi-producer / multi-consumer task queue.
 *
 * The backpressure primitive under the experiment thread pool:
 * producers block in push() while the queue is at capacity, so a
 * sweep that enumerates a huge configuration grid never materialises
 * more than O(capacity) queued tasks at once.  close() wakes every
 * waiter; consumers drain the remaining items before pop() starts
 * returning std::nullopt.
 */

#ifndef SUIT_EXEC_BOUNDED_QUEUE_HH
#define SUIT_EXEC_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace suit::exec {

/** Mutex/condvar MPMC queue with a hard capacity. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity maximum queued items (>= 1). */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full.
     *
     * @return false if the queue was closed (item dropped).
     */
    bool push(T item)
    {
        std::unique_lock lock(mu_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue one item, blocking while the queue is empty.
     *
     * @return std::nullopt once the queue is closed and drained.
     */
    std::optional<T> pop()
    {
        std::unique_lock lock(mu_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return item;
    }

    /** Close the queue: unblocks all producers and consumers. */
    void close()
    {
        std::lock_guard lock(mu_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** The configured capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Current item count (racy snapshot, for tests/telemetry). */
    std::size_t size() const
    {
        std::lock_guard lock(mu_);
        return items_.size();
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace suit::exec

#endif // SUIT_EXEC_BOUNDED_QUEUE_HH
