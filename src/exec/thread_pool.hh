/**
 * @file
 * Fixed-size worker thread pool for experiment execution.
 *
 * Design points:
 *  - a bounded MPMC queue (BoundedQueue) between submitters and
 *    workers, so grid enumeration is backpressured rather than
 *    buffered without limit;
 *  - exceptions thrown by a job are captured and rethrown to the
 *    caller (from the job's future, or from parallelFor() — lowest
 *    job index first, so failure reporting is deterministic too);
 *  - per-worker counters (jobs run, queue wait, busy time) as the
 *    first observability hook into experiment execution.
 *
 * Determinism contract: the pool itself never reorders *results* —
 * parallelFor()/mapReduce() write into index-addressed slots and
 * reduce in index order, so a pool of any size produces bit-identical
 * output to a serial loop as long as each job is a pure function of
 * its index.
 */

#ifndef SUIT_EXEC_THREAD_POOL_HH
#define SUIT_EXEC_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/bounded_queue.hh"

namespace suit::exec {

/** Per-worker execution counters (snapshot, see ThreadPool::stats). */
struct WorkerStats
{
    /** Jobs executed by this worker. */
    std::uint64_t jobsRun = 0;
    /** Seconds spent blocked on the queue waiting for work. */
    double queueWaitS = 0.0;
    /** Seconds spent executing jobs. */
    double busyS = 0.0;
};

/** Fixed-size thread pool over a bounded task queue. */
class ThreadPool
{
  public:
    /**
     * @param workers worker thread count; 0 selects
     *        hardwareConcurrency().
     * @param queue_capacity task queue bound; 0 selects
     *        2 x workers.
     * @param pin_workers pin worker i to CPU i mod
     *        hardwareConcurrency() (opt-in; see pinnedWorkers()).
     */
    explicit ThreadPool(int workers = 0, std::size_t queue_capacity = 0,
                        bool pin_workers = false);

    /** Joins all workers; queued jobs are drained first. */
    ~ThreadPool();

    /**
     * Close the queue and join every worker (idempotent; the
     * destructor calls it too).  After shutdown() the pool accepts
     * no new work, but stats() still reads the final counters —
     * which is what the footer rendering and the shutdown-accounting
     * tests rely on.
     */
    void shutdown();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int workers() const { return static_cast<int>(threads_.size()); }

    /**
     * Workers successfully pinned to a CPU.  0 unless pinning was
     * requested; may be < workers() where the platform refuses the
     * affinity call (pinning degrades gracefully — the worker keeps
     * running unpinned and a single warning is emitted).
     */
    int pinnedWorkers() const
    {
        return pinned_.load(std::memory_order_relaxed);
    }

    /**
     * Index of the pool worker running the current thread, or -1 on
     * any thread that is not a pool worker (including the thread
     * that constructed the pool).  Lets per-worker state — e.g. the
     * Session's SimWorkspace slots — be addressed without plumbing
     * the index through every job signature.  Indices of different
     * pools overlap; with more than one live pool, combine with a
     * pool identity check.
     */
    static int currentWorkerIndex();

    /**
     * Enqueue @p job; blocks while the queue is full.  The returned
     * future completes when the job ran and rethrows anything the job
     * threw.
     */
    std::future<void> submit(std::function<void()> job);

    /**
     * Run body(0) .. body(n-1) across the workers and wait.
     *
     * If any bodies throw, the exception of the lowest-index failing
     * job is rethrown after all jobs finished (deterministic
     * regardless of scheduling).
     *
     * Must not be called from a worker of this same pool: that
     * deadlocks on the bounded queue, and is detected with a panic
     * instead of a hang.  Calling it from a worker of a *different*
     * pool is allowed.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map every index through @p map on the pool, then fold the
     * results serially in index order: the reduction is bit-identical
     * to `for (i) acc = reduce(acc, map(i))` for any worker count.
     */
    template <typename Result, typename MapFn, typename ReduceFn>
    Result mapReduce(std::size_t n, Result init, MapFn map,
                     ReduceFn reduce)
    {
        using Value = std::invoke_result_t<MapFn, std::size_t>;
        std::vector<std::optional<Value>> slots(n);
        parallelFor(n, [&](std::size_t i) { slots[i].emplace(map(i)); });
        Result acc = std::move(init);
        for (std::optional<Value> &slot : slots)
            acc = reduce(std::move(acc), std::move(*slot));
        return acc;
    }

    /** Snapshot of the per-worker counters. */
    std::vector<WorkerStats> stats() const;

    /** std::thread::hardware_concurrency with a >= 1 floor. */
    static int hardwareConcurrency();

  private:
    /** Counter cell updated only by its owning worker (atomically
     *  relaxed, so concurrent stats() snapshots are race-free). */
    struct WorkerCell
    {
        std::atomic<std::uint64_t> jobsRun{0};
        std::atomic<std::uint64_t> queueWaitNs{0};
        std::atomic<std::uint64_t> busyNs{0};
    };

    /** A queued job plus a completion hook that fires *after* the
     *  worker's counters were updated, so a caller woken by it sees
     *  consistent stats. */
    struct Task
    {
        std::function<void()> body;
        std::function<void()> notify;
    };

    void workerMain(std::size_t index);

    /** Pin the calling worker to a CPU; true on success. */
    static bool pinCurrentThread(std::size_t index);

    BoundedQueue<Task> queue_;
    std::vector<std::unique_ptr<WorkerCell>> cells_;
    std::vector<std::thread> threads_;
    bool pinWorkers_ = false; //!< pin workers to CPUs at startup
    std::atomic<int> pinned_{0}; //!< workers successfully pinned
    bool joined_ = false; //!< shutdown() already ran
};

} // namespace suit::exec

#endif // SUIT_EXEC_THREAD_POOL_HH
