#include "exec/checkpoint.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "obs/flight.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/result_io.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace suit::exec {

namespace {

constexpr char kMagic[8] = {'S', 'U', 'I', 'T', 'J', 'R', 'N', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

void
putU32(std::uint32_t v, std::string &out)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::uint64_t v, std::string &out)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

/** Record payload for one cell outcome. */
std::string
encodePayload(const CellRecord &record)
{
    std::string payload;
    putU64(record.index, payload);
    if (record.isBlob) {
        payload.push_back(2);
        putU32(static_cast<std::uint32_t>(record.blob.size()),
               payload);
        payload.append(record.blob);
    } else if (record.failed) {
        payload.push_back(1);
        putU32(static_cast<std::uint32_t>(record.error.size()),
               payload);
        payload.append(record.error);
    } else {
        payload.push_back(0);
        suit::sim::serializeResult(record.result, payload);
    }
    return payload;
}

/** Frame @p payload as [length][checksum][payload] onto @p out. */
void
encodeRecord(const std::string &payload, std::string &out)
{
    putU32(static_cast<std::uint32_t>(payload.size()), out);
    putU32(static_cast<std::uint32_t>(
               fnv1a64(payload.data(), payload.size()) & 0xFFFFFFFFu),
           out);
    out.append(payload);
}

/**
 * Decode one framed record payload.  Returns false on any structural
 * problem (the caller treats it as a torn tail).
 */
bool
decodePayload(const char *data, std::size_t size, CellRecord &out)
{
    if (size < 9)
        return false;
    out.index = getU64(data);
    const std::uint8_t status =
        static_cast<std::uint8_t>(data[8]);
    if (status > 2)
        return false;
    out.failed = status == 1;
    out.isBlob = status == 2;
    std::size_t offset = 9;
    if (out.failed || out.isBlob) {
        if (size - offset < 4)
            return false;
        const std::uint32_t len = getU32(data + offset);
        offset += 4;
        if (size - offset < len)
            return false;
        (out.isBlob ? out.blob : out.error)
            .assign(data + offset, len);
        offset += len;
    } else {
        if (!suit::sim::deserializeResult(data, size, offset,
                                          out.result))
            return false;
    }
    return offset == size;
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

CheckpointJournal::~CheckpointJournal()
{
    // Destruction is the last chance for a batched journal to land
    // its tail; a write failure here must not throw out of a
    // destructor (the engine may already be unwinding an exception).
    try {
        flush();
    } catch (const JournalError &e) {
        suit::util::warn("checkpoint flush on close failed: %s",
                         e.what());
    }
}

void
CheckpointJournal::setFlushInterval(int every)
{
    SUIT_ASSERT(every >= 1, "flush interval must be >= 1, got %d",
                every);
    std::lock_guard lock(mu_);
    flushEvery_ = every;
}

void
CheckpointJournal::start(const std::string &path,
                         const GridFingerprint &fp,
                         std::vector<CellRecord> seed)
{
    std::lock_guard lock(mu_);
    path_ = path;
    image_.clear();
    image_.append(kMagic, sizeof(kMagic));
    putU32(kVersion, image_);
    putU32(0, image_); // reserved
    putU64(fp.hash, image_);
    putU64(fp.cells, image_);
    for (const CellRecord &record : seed)
        encodeRecord(encodePayload(record), image_);
    // The header (and any resume seed) always hits the disk before
    // the run starts, whatever the flush interval: a crash during
    // the first batch must recover the restored cells.
    writeImage();
    pending_ = 0;
}

void
CheckpointJournal::append(const CellRecord &record)
{
    obs::FlightSpan span("journal.append", "exec");
    std::lock_guard lock(mu_);
    if (path_.empty())
        return;
    encodeRecord(encodePayload(record), image_);
    if (++pending_ < flushEvery_)
        return; // buffered; durable at the next interval boundary
    writeImage();
    pending_ = 0;
}

void
CheckpointJournal::flush()
{
    std::lock_guard lock(mu_);
    if (path_.empty() || pending_ == 0)
        return;
    writeImage();
    pending_ = 0;
}

void
CheckpointJournal::writeImage()
{
    // Span events per durability stage (open / write / fsync /
    // rename) on the writer thread's host track: the Chrome trace of
    // a checkpointed run shows exactly where journal time goes.
    obs::TraceSession *const trace = obs::activeTrace();
    const int track =
        trace ? trace->threadTrack("journal") : 0;
    const auto wall_start = std::chrono::steady_clock::now();
    const auto stage_start = [&] {
        return trace ? trace->hostNowUs() : 0.0;
    };
    const auto stage_end = [&](double start, const char *name) {
        if (trace) {
            const double now_us = trace->hostNowUs();
            trace->complete(obs::TraceSession::kHostPid, track,
                            start, now_us - start, name, "journal");
        }
    };
    const double append_start = stage_start();

    const std::string tmp = path_ + ".tmp";
    double t = stage_start();
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    stage_end(t, "journal.open");
    if (f == nullptr)
        throw JournalError(suit::util::sformat(
            "cannot write checkpoint '%s': %s", tmp.c_str(),
            std::strerror(errno)));
    t = stage_start();
    const bool wrote =
        std::fwrite(image_.data(), 1, image_.size(), f) ==
            image_.size() &&
        std::fflush(f) == 0;
    stage_end(t, "journal.write");
    t = stage_start();
    const bool synced = wrote && ::fsync(::fileno(f)) == 0;
    stage_end(t, "journal.fsync");
    std::fclose(f);
    t = stage_start();
    const bool renamed =
        synced && std::rename(tmp.c_str(), path_.c_str()) == 0;
    stage_end(t, "journal.rename");
    stage_end(append_start, "journal.append");
    if (!renamed)
        throw JournalError(suit::util::sformat(
            "cannot write checkpoint '%s': %s", path_.c_str(),
            std::strerror(errno)));

    obs::Registry &reg = obs::metrics();
    if (reg.enabled()) {
        reg.add(reg.counter("exec.journal.writes"));
        reg.add(reg.counter("exec.journal.bytes_written"),
                image_.size());
        static const std::vector<double> kAppendMsBounds{
            0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        reg.observe(
            reg.histogram("exec.journal.append_ms", kAppendMsBounds),
            elapsed_ms);
    }
}

JournalContents
CheckpointJournal::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw JournalError(suit::util::sformat(
            "cannot open checkpoint '%s': %s", path.c_str(),
            std::strerror(errno)));
    std::string bytes;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw JournalError(suit::util::sformat(
            "cannot read checkpoint '%s'", path.c_str()));

    if (bytes.size() < kHeaderSize ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw JournalError(suit::util::sformat(
            "'%s' is not a SUIT checkpoint journal", path.c_str()));
    const std::uint32_t version = getU32(bytes.data() + 8);
    if (version != kVersion)
        throw JournalError(suit::util::sformat(
            "checkpoint '%s' has unsupported version %u (expected "
            "%u)",
            path.c_str(), version, kVersion));

    JournalContents contents;
    contents.fingerprint.hash = getU64(bytes.data() + 16);
    contents.fingerprint.cells = getU64(bytes.data() + 24);

    std::size_t offset = kHeaderSize;
    while (offset < bytes.size()) {
        const std::size_t remaining = bytes.size() - offset;
        if (remaining < 8)
            break; // torn frame header
        const std::uint32_t len = getU32(bytes.data() + offset);
        const std::uint32_t checksum =
            getU32(bytes.data() + offset + 4);
        if (remaining - 8 < len)
            break; // torn payload
        const char *payload = bytes.data() + offset + 8;
        if ((fnv1a64(payload, len) & 0xFFFFFFFFu) != checksum)
            break; // corrupt payload
        CellRecord record;
        if (!decodePayload(payload, len, record))
            break;
        contents.records.push_back(std::move(record));
        offset += 8 + len;
    }
    contents.droppedBytes = bytes.size() - offset;
    return contents;
}

} // namespace suit::exec
