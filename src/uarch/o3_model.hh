/**
 * @file
 * Out-of-order CPU timing model (paper Table 5, Sec. 6.1).
 *
 * An instruction-window timestamp model of a gem5-O3-class core:
 * every instruction's fetch, dispatch, issue, completion and commit
 * cycles are derived from dependency timestamps and resource windows
 * (ROB / IQ / LSQ occupancy, fetch/dispatch/issue/commit bandwidth,
 * functional-unit servers, cache latencies, branch redirects).  This
 * style of model processes one instruction in O(1) and reproduces
 * the property the paper's study depends on: out-of-order scheduling
 * hides small latency increases of rare instructions (the 4-cycle
 * IMUL) unless they sit on the dependency critical path.
 *
 * SUIT hooks: a disable-opcode set checked at dispatch.  A disabled
 * instruction never begins execution — the pipeline drains (precise
 * like #UD; no Meltdown-style speculative execution of the disabled
 * opcode, paper Sec. 8) and a trap handler runs, which may emulate
 * the instruction or re-enable the set after a DVFS switch.
 */

#ifndef SUIT_UARCH_O3_MODEL_HH
#define SUIT_UARCH_O3_MODEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "isa/faultable.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/program.hh"

namespace suit::uarch {

/** Timing of one functional-unit class. */
struct FuConfig
{
    int count = 1;         //!< number of units
    int latency = 1;       //!< result latency in cycles
    bool pipelined = true; //!< can accept a new op every cycle
};

/** Static core configuration (defaults: Table 5 gem5 O3 system). */
struct CoreConfig
{
    int fetchWidth = 8;
    int decodeWidth = 8;
    int issueWidth = 8;
    int commitWidth = 8;
    int robSize = 192;
    int iqSize = 64;
    int lsqSize = 72;
    /** Front-end refill after a branch redirect, cycles. */
    int redirectPenalty = 10;
    /** #DO / exception entry overhead in cycles (~0.34 us @3 GHz). */
    int trapPenalty = 1000;
    /** Stride prefetcher hides sequential-stream L1D misses. */
    bool stridePrefetcher = true;
    /** Per-class functional units; see defaultFuTable(). */
    std::array<FuConfig, kNumOpClasses> fus = defaultFuTable();
    /** Memory system (Table 5). */
    MemoryHierarchy::Config mem;

    /** Stock FU table: 3-cycle pipelined IMUL, etc. */
    static std::array<FuConfig, kNumOpClasses> defaultFuTable();

    /** Set the IMUL latency (the Fig. 14 sweep parameter). */
    void setImulLatency(int cycles);
};

/** Aggregate run statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t traps = 0;      //!< #DO exceptions taken
    std::uint64_t emulated = 0;   //!< trapped + emulated in place
    std::uint64_t l1dMisses = 0;
    std::uint64_t llcMisses = 0;
    std::array<std::uint64_t, kNumOpClasses> classCounts{};

    /** Retired instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** What the trap handler tells the core to do with a #DO. */
struct UarchTrapAction
{
    /** Emulate in place (costing @c extraCycles) vs. re-execute. */
    bool emulate = false;
    /** Additional cycles charged by the handler/emulation. */
    std::uint64_t extraCycles = 0;
    /** New disabled set after the handler returns. */
    suit::isa::FaultableSet newDisabledSet;
    /**
     * Arm the deadline alarm with this reload (cycles); 0 leaves it
     * untouched.
     */
    std::uint64_t armAlarmCycles = 0;
};

/** The core model. */
class O3Model
{
  public:
    /** Handler invoked on a #DO trap (at drain cycle @p when). */
    using TrapHandler =
        std::function<UarchTrapAction(suit::isa::FaultableKind kind,
                                      std::uint64_t seq,
                                      std::uint64_t when)>;

    /**
     * Handler invoked when the deadline alarm expires (the SUIT
     * deadline timer, Sec. 4.1).  Returns the actions to apply,
     * exactly like a trap (typically: disable the set again).
     */
    using AlarmHandler =
        std::function<suit::isa::FaultableSet(std::uint64_t when)>;

    explicit O3Model(const CoreConfig &config = {});

    /** Set the disabled faultable set (the DISABLE_OPCODE MSR). */
    void setDisabledSet(suit::isa::FaultableSet set);
    /** Current disabled set. */
    suit::isa::FaultableSet disabledSet() const { return disabled_; }

    /** Install the #DO handler (required if anything is disabled). */
    void setTrapHandler(TrapHandler handler);

    /**
     * Install the deadline-alarm handler.  The trap handler arms the
     * alarm via UarchTrapAction::armAlarmCycles; the hardware
     * restarts the count-down whenever an instruction of the *touch
     * set* executes (Sec. 4.1: "an instruction that would be
     * disabled on the efficient DVFS curve") and invokes the handler
     * once when it expires.
     */
    void setAlarmHandler(AlarmHandler handler);

    /**
     * The instructions that restart the deadline count-down — the
     * set the MSR disables on the efficient curve (the hardened
     * IMUL is *not* in it).
     */
    void setAlarmTouchSet(suit::isa::FaultableSet set);

    /** Run a program to completion and return the statistics. */
    CoreStats run(const Program &program);

    /** The memory hierarchy (for stats inspection after run()). */
    const MemoryHierarchy &memory() const { return mem_; }
    /** The branch predictor. */
    const GsharePredictor &predictor() const { return bp_; }
    /** The configuration. */
    const CoreConfig &config() const { return cfg_; }

  private:
    CoreConfig cfg_;
    MemoryHierarchy mem_;
    GsharePredictor bp_;
    suit::isa::FaultableSet disabled_;
    suit::isa::FaultableSet alarmTouchSet_ =
        suit::isa::FaultableSet::suitTrapSet();
    TrapHandler handler_;
    AlarmHandler alarmHandler_;
};

/**
 * Convenience: run @p mix for @p count instructions at an IMUL
 * latency and return the stats.
 */
CoreStats runMixAtImulLatency(const ProgramMix &mix, std::size_t count,
                              int imul_latency,
                              std::uint64_t seed = 17);

} // namespace suit::uarch

#endif // SUIT_UARCH_O3_MODEL_HH
