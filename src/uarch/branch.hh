/**
 * @file
 * Branch prediction for the out-of-order model: a PC-indexed table
 * of 2-bit saturating counters, optionally XOR-ed with global
 * history (gshare).  Synthetic traces have per-site-deterministic
 * outcomes but non-repeating global history, so the default is the
 * bimodal configuration (history_bits = 0); real-trace consumers can
 * enable the history.  Targets need no BTB in a trace-driven model —
 * only the direction can be wrong.
 */

#ifndef SUIT_UARCH_BRANCH_HH
#define SUIT_UARCH_BRANCH_HH

#include <cstdint>
#include <vector>

namespace suit::uarch {

/** gshare direction predictor. */
class GsharePredictor
{
  public:
    /**
     * @param table_bits log2 of the counter-table size.
     * @param history_bits global-history length XOR-ed into the
     *        index; 0 = bimodal.
     */
    explicit GsharePredictor(int table_bits = 14,
                             int history_bits = 0);

    /** Predict the direction of the branch at @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Update with the resolved outcome and advance the history. */
    void update(std::uint64_t pc, bool taken);

    /** Predictions made so far. */
    std::uint64_t lookups() const { return lookups_; }
    /** Mispredictions recorded so far. */
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;

    std::size_t index(std::uint64_t pc) const;
};

} // namespace suit::uarch

#endif // SUIT_UARCH_BRANCH_HH
