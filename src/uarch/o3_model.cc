#include "uarch/o3_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace suit::uarch {

using Cycle = std::uint64_t;

std::array<FuConfig, kNumOpClasses>
CoreConfig::defaultFuTable()
{
    std::array<FuConfig, kNumOpClasses> fus{};
    auto set = [&fus](OpClass op, FuConfig fu) {
        fus[static_cast<std::size_t>(op)] = fu;
    };
    set(OpClass::IntAlu, {4, 1, true});
    set(OpClass::IntMul, {1, 3, true}); // 3 cycles stock (Sec. 2.3)
    set(OpClass::IntDiv, {1, 20, false});
    set(OpClass::FpAlu, {2, 3, true});
    set(OpClass::FpMul, {2, 4, true});
    set(OpClass::FpDiv, {1, 12, false});
    set(OpClass::SimdAlu, {2, 2, true});
    set(OpClass::Aes, {1, 4, true});
    set(OpClass::Load, {2, 0, true});  // latency from the caches
    set(OpClass::Store, {1, 1, true});
    set(OpClass::Branch, {2, 1, true});
    return fus;
}

void
CoreConfig::setImulLatency(int cycles)
{
    SUIT_ASSERT(cycles >= 1, "IMUL latency must be >= 1");
    fus[static_cast<std::size_t>(OpClass::IntMul)].latency = cycles;
}

O3Model::O3Model(const CoreConfig &config)
    : cfg_(config), mem_(config.mem)
{
}

void
O3Model::setDisabledSet(suit::isa::FaultableSet set)
{
    disabled_ = set;
}

void
O3Model::setTrapHandler(TrapHandler handler)
{
    handler_ = std::move(handler);
}

void
O3Model::setAlarmHandler(AlarmHandler handler)
{
    alarmHandler_ = std::move(handler);
}

void
O3Model::setAlarmTouchSet(suit::isa::FaultableSet set)
{
    alarmTouchSet_ = set;
}

namespace {

/** Ring buffer of the last N cycle stamps (resource windows). */
class Window
{
  public:
    explicit Window(std::size_t size) : buf_(std::max<std::size_t>(
                                                 size, 1),
                                             0)
    {
    }

    /** Stamp of the entry `size` slots back. */
    Cycle oldest() const { return buf_[head_]; }

    /** Record the next stamp. */
    void
    push(Cycle c)
    {
        buf_[head_] = c;
        head_ = (head_ + 1) % buf_.size();
    }

  private:
    std::vector<Cycle> buf_;
    std::size_t head_ = 0;
};

} // namespace

CoreStats
O3Model::run(const Program &program)
{
    CoreStats stats;

    // Per-architectural-register readiness (renaming removes all
    // WAR/WAW hazards; a linear trace only needs the RAW chain).
    std::array<Cycle, kNumArchRegs> reg_ready{};

    // Resource windows.
    Window fetch_bw(static_cast<std::size_t>(cfg_.fetchWidth));
    Window dispatch_bw(static_cast<std::size_t>(cfg_.decodeWidth));
    Window issue_bw(static_cast<std::size_t>(cfg_.issueWidth));
    Window commit_bw(static_cast<std::size_t>(cfg_.commitWidth));
    Window rob(static_cast<std::size_t>(cfg_.robSize));
    Window iq(static_cast<std::size_t>(cfg_.iqSize));
    Window lsq(static_cast<std::size_t>(cfg_.lsqSize));

    // Functional-unit servers: next-free cycle per unit.
    std::array<std::vector<Cycle>, kNumOpClasses> fu_free;
    for (std::size_t c = 0; c < kNumOpClasses; ++c)
        fu_free[c].assign(
            static_cast<std::size_t>(std::max(1, cfg_.fus[c].count)),
            0);

    Cycle fetch_ready = 0;     //!< earliest next fetch (redirects)
    Cycle last_commit = 0;     //!< latest commit stamp seen
    Cycle prev_commit_inorder = 0;
    // The SUIT deadline alarm (count-down with touch semantics).
    bool alarm_armed = false;
    Cycle alarm_at = 0;
    Cycle alarm_reload = 0;
    const std::uint64_t code_sites =
        std::max<std::uint64_t>(1, program.codeFootprintBytes / 4);

    const std::size_t n = program.insts.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Inst &inst = program.insts[i];
        ++stats.classCounts[static_cast<std::size_t>(inst.op)];

        // Deadline alarm: fire before this instruction if the
        // count-down ran out (approximated at commit granularity).
        if (alarm_armed && last_commit >= alarm_at) {
            alarm_armed = false;
            if (alarmHandler_)
                disabled_ = alarmHandler_(last_commit);
        }

        // ---- Fetch ---------------------------------------------
        const std::uint64_t pc = 0x400000 + (i % code_sites) * 4;
        Cycle fetch = std::max(fetch_ready, fetch_bw.oldest() + 1);
        // Instruction cache: charge the line fill on a miss.
        const int ic_lat = mem_.instAccess(pc);
        if (ic_lat > cfg_.mem.l1i.hitLatency)
            fetch += static_cast<Cycle>(ic_lat);
        fetch_bw.push(fetch);

        // ---- Dispatch (rename + ROB/IQ/LSQ allocation) ----------
        Cycle dispatch = std::max(fetch + 1, dispatch_bw.oldest() + 1);
        dispatch = std::max(dispatch, rob.oldest());
        dispatch = std::max(dispatch, iq.oldest());
        if (inst.isMem())
            dispatch = std::max(dispatch, lsq.oldest());

        bool emulated_in_trap = false;
        Cycle trap_done = 0;
        if (inst.faultable && disabled_.contains(*inst.faultable)) {
            // Precise #DO: the disabled opcode must not execute,
            // speculatively or otherwise.  Drain everything older,
            // then run the handler.
            ++stats.traps;
            SUIT_ASSERT(handler_,
                        "#DO raised with no trap handler installed");
            const Cycle drained = std::max(dispatch, last_commit);
            const UarchTrapAction action =
                handler_(*inst.faultable, static_cast<std::uint64_t>(i),
                         drained);
            trap_done = drained +
                        static_cast<Cycle>(cfg_.trapPenalty) +
                        action.extraCycles;
            disabled_ = action.newDisabledSet;
            if (action.armAlarmCycles > 0) {
                alarm_armed = true;
                alarm_reload = action.armAlarmCycles;
                alarm_at = trap_done + alarm_reload;
            }
            if (action.emulate) {
                emulated_in_trap = true;
                ++stats.emulated;
            }
            dispatch = trap_done;
            // The front end restarts behind the trap.
            fetch_ready = std::max(fetch_ready, trap_done);
        }
        dispatch_bw.push(dispatch);

        // ---- Issue + execute ------------------------------------
        Cycle complete;
        if (emulated_in_trap) {
            // The handler produced the architectural result; the
            // value is available when the trap path finishes.
            complete = dispatch;
            if (inst.dst >= 0)
                reg_ready[static_cast<std::size_t>(inst.dst)] =
                    complete;
            iq.push(dispatch);
        } else {
            Cycle ready = dispatch;
            if (inst.src1 >= 0)
                ready = std::max(
                    ready,
                    reg_ready[static_cast<std::size_t>(inst.src1)]);
            if (inst.src2 >= 0)
                ready = std::max(
                    ready,
                    reg_ready[static_cast<std::size_t>(inst.src2)]);

            // Functional unit: earliest-free server.
            auto &servers =
                fu_free[static_cast<std::size_t>(inst.op)];
            auto best = std::min_element(servers.begin(),
                                         servers.end());
            Cycle issue = std::max(ready, *best);
            issue = std::max(issue, issue_bw.oldest() + 1);
            issue_bw.push(issue);

            const FuConfig &fu =
                cfg_.fus[static_cast<std::size_t>(inst.op)];
            int latency = fu.latency;
            if (inst.op == OpClass::Load) {
                latency = mem_.dataAccess(inst.addr);
                if (cfg_.stridePrefetcher && inst.streamingHint) {
                    // The stride prefetcher issued the fill ahead of
                    // time; the demand access hits.
                    latency = cfg_.mem.l1d.hitLatency;
                }
            } else if (inst.op == OpClass::Store) {
                (void)mem_.dataAccess(inst.addr); // fills the line
            }

            *best = issue + (fu.pipelined
                                 ? 1
                                 : static_cast<Cycle>(latency));
            complete = issue + static_cast<Cycle>(latency);

            if (inst.dst >= 0)
                reg_ready[static_cast<std::size_t>(inst.dst)] =
                    complete;

            // ---- Branches ---------------------------------------
            if (inst.isBranch()) {
                ++stats.branches;
                const bool predicted = bp_.predict(pc);
                bp_.update(pc, inst.taken);
                if (predicted != inst.taken) {
                    ++stats.mispredicts;
                    // Redirect: fetch resumes after resolution plus
                    // the front-end refill.
                    fetch_ready = std::max(
                        fetch_ready,
                        complete + static_cast<Cycle>(
                                       cfg_.redirectPenalty));
                }
            }

            iq.push(issue);
        }

        // Touch: executing an instruction that would be disabled on
        // the efficient curve restarts the count-down (Sec. 4.1).
        if (alarm_armed && inst.faultable &&
            alarmTouchSet_.contains(*inst.faultable)) {
            alarm_at = complete + alarm_reload;
        }

        // ---- Commit (in order) ----------------------------------
        Cycle commit = std::max(complete + 1, prev_commit_inorder);
        commit = std::max(commit, commit_bw.oldest() + 1);
        commit_bw.push(commit);
        prev_commit_inorder = commit;
        last_commit = std::max(last_commit, commit);
        // ROB and LSQ entries free at commit.
        rob.push(commit);
        if (inst.isMem())
            lsq.push(commit);

        ++stats.instructions;
        if (inst.op == OpClass::Load)
            ++stats.loads;
        else if (inst.op == OpClass::Store)
            ++stats.stores;
    }

    stats.cycles = last_commit;
    stats.l1dMisses = mem_.l1d().misses();
    stats.llcMisses = mem_.llc().misses();
    return stats;
}

CoreStats
runMixAtImulLatency(const ProgramMix &mix, std::size_t count,
                    int imul_latency, std::uint64_t seed)
{
    CoreConfig cfg;
    cfg.setImulLatency(imul_latency);
    O3Model core(cfg);
    const Program prog = ProgramGenerator(seed).generate(mix, count);
    return core.run(prog);
}

} // namespace suit::uarch
