/**
 * @file
 * Synthetic program generation for the out-of-order model.
 *
 * SPEC CPU2017 binaries are not redistributable, so the latency
 * study runs on synthetic instruction streams whose first-order
 * statistics (op-class mix, IMUL density, dependency locality,
 * branch behaviour, memory footprint) match the benchmark being
 * imitated — the same role SPECcast's representative slices play in
 * the paper's gem5 runs (Sec. 6.1).
 */

#ifndef SUIT_UARCH_PROGRAM_HH
#define SUIT_UARCH_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/inst.hh"

namespace suit::uarch {

/** Statistical description of a workload's instruction stream. */
struct ProgramMix
{
    /** Label used in reports. */
    std::string name = "generic";
    /** Relative op-class weights (normalised internally). */
    double weights[kNumOpClasses] = {};
    /**
     * Dependency locality: sources are drawn from the last N
     * destinations with geometric decay; smaller = tighter chains,
     * less ILP.
     */
    double depLocality = 8.0;
    /**
     * Probability a source slot reads a long-stable value (loop
     * invariant, constant, induction variable far ahead) instead of
     * a recent producer; this is where real programs get their ILP.
     */
    double independentSrcRate = 0.55;
    /** Probability a conditional branch is taken. */
    double takenRate = 0.45;
    /**
     * Fraction of branches whose outcome is data-dependent noise
     * (unpredictable even for gshare).
     */
    double noisyBranchRate = 0.05;
    /** Memory footprint in bytes (addresses wrap inside it). */
    std::uint64_t footprintBytes = 1 << 20;
    /** Fraction of memory accesses that stream sequentially. */
    double streamingRate = 0.7;
    /** Hot working set for the non-streaming accesses. */
    std::uint64_t hotSetBytes = 16 * 1024;
    /** Fraction of non-streaming accesses that stay in the hot set. */
    double hotRate = 0.95;
    /**
     * Static code footprint: the stream models a hot loop of this
     * many bytes, so instruction fetch hits the L1I and branch sites
     * recur (and become learnable) once the loop wraps.
     */
    std::uint64_t codeFootprintBytes = 16 * 1024;
    /**
     * Mean length of dependent IMUL chains (hashing / x264 cost
     * trees emit runs of multiplies that feed each other).  The
     * op-class weight counts chain *triggers*; each trigger expands
     * into a geometric run of chained IMULs, so the IMUL instruction
     * density is weight(IntMul) * mulChainLen.  Chains are what make
     * the IMUL latency visible: isolated multiplies hide entirely in
     * the out-of-order window.
     */
    double mulChainLen = 1.0;
};

/** A generated instruction stream. */
struct Program
{
    std::string name;
    /** Code footprint the PC wraps inside (from the mix). */
    std::uint64_t codeFootprintBytes = 16 * 1024;
    std::vector<Inst> insts;
};

/** Generates programs from mixes, deterministically per seed. */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(std::uint64_t seed = 17);

    /** Generate @p count instructions following @p mix. */
    Program generate(const ProgramMix &mix, std::size_t count) const;

  private:
    std::uint64_t seed_;
};

/** @{ Workload presets used by the Fig. 14 reproduction. */

/** Generic SPECint-like mix (0.07 % IMUL, the paper's average). */
ProgramMix specIntLikeMix();

/** Generic SPECfp-like mix. */
ProgramMix specFpLikeMix();

/** 525.x264-like mix: 0.99 % IMUL, multiply chains, SIMD-heavy. */
ProgramMix x264LikeMix();

/** Memory-bound mix (505.mcf-like). */
ProgramMix memBoundMix();

/** Branchy mix (541.leela-like). */
ProgramMix branchyMix();

/** AES-service mix (Nginx-like) with dense AESENC. */
ProgramMix aesServiceMix();

/**
 * The eight-mix set over which the Fig. 14 geomean is computed
 * (the paper reports n = 8).
 */
std::vector<ProgramMix> figure14Mixes();

/** @} */

} // namespace suit::uarch

#endif // SUIT_UARCH_PROGRAM_HH
