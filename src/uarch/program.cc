#include "uarch/program.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace suit::uarch {

using suit::isa::FaultableKind;
using suit::util::Rng;

const char *
toString(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::IntMul:
        return "IntMul";
      case OpClass::IntDiv:
        return "IntDiv";
      case OpClass::FpAlu:
        return "FpAlu";
      case OpClass::FpMul:
        return "FpMul";
      case OpClass::FpDiv:
        return "FpDiv";
      case OpClass::SimdAlu:
        return "SimdAlu";
      case OpClass::Aes:
        return "Aes";
      case OpClass::Load:
        return "Load";
      case OpClass::Store:
        return "Store";
      case OpClass::Branch:
        return "Branch";
      case OpClass::NumClasses:
        break;
    }
    return "?";
}

ProgramGenerator::ProgramGenerator(std::uint64_t seed) : seed_(seed) {}

namespace {

std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001B3ULL;
    }
    return h;
}

OpClass
sampleClass(const ProgramMix &mix, double total, Rng &rng)
{
    double u = rng.nextDouble() * total;
    for (std::size_t i = 0; i < kNumOpClasses; ++i) {
        u -= mix.weights[i];
        if (u < 0.0)
            return static_cast<OpClass>(i);
    }
    return OpClass::IntAlu;
}

/** Map a SIMD/AES/IMUL op to its Table 1 faultable class. */
std::optional<FaultableKind>
faultableKindFor(OpClass op, Rng &rng)
{
    switch (op) {
      case OpClass::IntMul:
        return FaultableKind::IMUL;
      case OpClass::Aes:
        return FaultableKind::AESENC;
      case OpClass::SimdAlu: {
        static constexpr FaultableKind kSimdKinds[] = {
            FaultableKind::VOR,    FaultableKind::VXOR,
            FaultableKind::VAND,   FaultableKind::VANDN,
            FaultableKind::VPADDQ, FaultableKind::VPCMP,
            FaultableKind::VPMAX,  FaultableKind::VPSRAD,
        };
        return kSimdKinds[rng.nextBelow(std::size(kSimdKinds))];
      }
      default:
        return std::nullopt;
    }
}

} // namespace

Program
ProgramGenerator::generate(const ProgramMix &mix,
                           std::size_t count) const
{
    Rng rng(seed_ ^ hashName(mix.name));

    double total = 0.0;
    for (double w : mix.weights)
        total += w;
    SUIT_ASSERT(total > 0.0, "program mix '%s' has no weights",
                mix.name.c_str());

    Program prog;
    prog.name = mix.name;
    prog.codeFootprintBytes = mix.codeFootprintBytes;
    prog.insts.reserve(count);
    const std::uint64_t code_sites =
        std::max<std::uint64_t>(1, mix.codeFootprintBytes / 4);

    // Ring of recently written registers for dependency sampling.
    std::int8_t recent_dst[kNumArchRegs];
    for (int i = 0; i < kNumArchRegs; ++i)
        recent_dst[i] = static_cast<std::int8_t>(i);
    int recent_head = 0;
    std::int8_t last_mul_dst = -1;
    int mul_chain_left = 0;
    const double chain_continue =
        mix.mulChainLen <= 1.0 ? 0.0 : 1.0 - 1.0 / mix.mulChainLen;
    std::uint64_t stream_addr = 0;

    auto pick_src = [&]() -> std::int8_t {
        // Stable operands (constants, invariants) carry no timing
        // dependency at all.
        if (rng.nextBool(mix.independentSrcRate))
            return -1;
        // Geometric walk back through recent destinations.
        int back = 0;
        while (back < kNumArchRegs - 1 &&
               rng.nextDouble() > 1.0 / mix.depLocality)
            ++back;
        const int idx =
            (recent_head - 1 - back + 2 * kNumArchRegs) % kNumArchRegs;
        return recent_dst[idx];
    };

    for (std::size_t n = 0; n < count; ++n) {
        Inst inst;
        if (mul_chain_left > 0) {
            inst.op = OpClass::IntMul;
            --mul_chain_left;
        } else {
            inst.op = sampleClass(mix, total, rng);
            if (inst.op == OpClass::IntMul) {
                // Expand into a dependent multiply chain.
                mul_chain_left = 0;
                while (rng.nextDouble() < chain_continue)
                    ++mul_chain_left;
            }
        }

        switch (inst.op) {
          case OpClass::Branch: {
            inst.src1 = pick_src();
            if (rng.nextBool(mix.noisyBranchRate)) {
                // Data-dependent branch: unpredictable noise.
                inst.taken = rng.nextBool(0.5);
            } else {
                // Site-deterministic outcome: the same static branch
                // behaves consistently across loop iterations, so
                // the predictor learns it.
                std::uint64_t site = n % code_sites;
                site = site * 0x9E3779B97F4A7C15ULL;
                inst.taken =
                    static_cast<double>(site >> 40) / (1 << 24) <
                    mix.takenRate;
            }
            break;
          }
          case OpClass::Store:
            inst.src1 = pick_src();
            inst.src2 = pick_src();
            break;
          case OpClass::Load:
            inst.src1 = pick_src();
            inst.dst = static_cast<std::int8_t>(
                rng.nextBelow(kNumArchRegs));
            break;
          default:
            inst.src1 = pick_src();
            inst.src2 = pick_src();
            inst.dst = static_cast<std::int8_t>(
                rng.nextBelow(kNumArchRegs));
            break;
        }

        if (inst.op == OpClass::IntMul && last_mul_dst >= 0 &&
            mul_chain_left > 0) {
            inst.src1 = last_mul_dst; // dependent multiply chain
        }

        if (inst.isMem()) {
            if (rng.nextBool(mix.streamingRate)) {
                stream_addr = (stream_addr + 8) % mix.footprintBytes;
                inst.addr = stream_addr;
                inst.streamingHint = true;
            } else if (rng.nextBool(mix.hotRate)) {
                // Temporal locality: most irregular accesses hit a
                // small hot working set (stack, top of heap).
                inst.addr = rng.nextBelow(std::min(
                                mix.hotSetBytes,
                                mix.footprintBytes)) &
                            ~7ULL;
            } else {
                inst.addr =
                    rng.nextBelow(mix.footprintBytes) & ~7ULL;
            }
        }

        inst.faultable = faultableKindFor(inst.op, rng);

        if (inst.dst >= 0) {
            recent_dst[recent_head] = inst.dst;
            recent_head = (recent_head + 1) % kNumArchRegs;
        }
        if (inst.op == OpClass::IntMul)
            last_mul_dst = inst.dst;

        prog.insts.push_back(inst);
    }
    return prog;
}

namespace {

ProgramMix
baseMix(const char *name)
{
    ProgramMix m;
    m.name = name;
    auto w = [&m](OpClass op) -> double & {
        return m.weights[static_cast<std::size_t>(op)];
    };
    w(OpClass::IntAlu) = 0.42;
    w(OpClass::Load) = 0.24;
    w(OpClass::Store) = 0.10;
    w(OpClass::Branch) = 0.16;
    // The IMUL *density* is weight * mulChainLen (Sec. 6.1: 0.07 %
    // on average over SPEC); typical code has isolated multiplies,
    // which the out-of-order window hides almost fully.
    w(OpClass::IntMul) = 0.0007;
    w(OpClass::IntDiv) = 0.0005;
    return m;
}

} // namespace

ProgramMix
specIntLikeMix()
{
    ProgramMix m = baseMix("spec-int-like");
    m.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.04;
    m.weights[static_cast<std::size_t>(OpClass::IntAlu)] += 0.03;
    return m;
}

ProgramMix
specFpLikeMix()
{
    ProgramMix m = baseMix("spec-fp-like");
    auto w = [&m](OpClass op) -> double & {
        return m.weights[static_cast<std::size_t>(op)];
    };
    w(OpClass::Branch) = 0.06;
    w(OpClass::FpAlu) = 0.18;
    w(OpClass::FpMul) = 0.12;
    w(OpClass::FpDiv) = 0.004;
    w(OpClass::SimdAlu) = 0.08;
    m.depLocality = 10.0;
    m.footprintBytes = 8 << 20;
    return m;
}

ProgramMix
x264LikeMix()
{
    ProgramMix m = baseMix("x264-like");
    auto w = [&m](OpClass op) -> double & {
        return m.weights[static_cast<std::size_t>(op)];
    };
    m.mulChainLen = 32.0; // cost-tree multiply chains
    w(OpClass::IntMul) = 0.0099 / m.mulChainLen; // 0.99 % IMUL total
    w(OpClass::SimdAlu) = 0.14;
    // Encoder loops: few, well-predicted branches, blocked streaming
    // access to the frame data -> high baseline IPC (gem5: ~2.3).
    w(OpClass::Branch) = 0.07;
    m.noisyBranchRate = 0.015;
    m.depLocality = 5.0;
    m.footprintBytes = 512 << 10;
    m.streamingRate = 0.88;
    m.hotRate = 0.99;
    return m;
}

ProgramMix
memBoundMix()
{
    ProgramMix m = baseMix("mem-bound");
    auto w = [&m](OpClass op) -> double & {
        return m.weights[static_cast<std::size_t>(op)];
    };
    w(OpClass::Load) = 0.38;
    w(OpClass::IntAlu) = 0.32;
    m.footprintBytes = 64 << 20; // far beyond the LLC
    m.streamingRate = 0.15;      // pointer chasing
    m.hotRate = 0.25;            // little temporal locality
    m.independentSrcRate = 0.35; // address chains
    return m;
}

ProgramMix
branchyMix()
{
    ProgramMix m = baseMix("branchy");
    m.weights[static_cast<std::size_t>(OpClass::Branch)] = 0.24;
    m.noisyBranchRate = 0.18;
    return m;
}

ProgramMix
aesServiceMix()
{
    ProgramMix m = baseMix("aes-service");
    auto w = [&m](OpClass op) -> double & {
        return m.weights[static_cast<std::size_t>(op)];
    };
    w(OpClass::Aes) = 0.07; // 14 AESENC per 16-byte block
    w(OpClass::SimdAlu) = 0.06;
    m.depLocality = 4.0; // AES rounds chain on the state register
    return m;
}

std::vector<ProgramMix>
figure14Mixes()
{
    std::vector<ProgramMix> mixes = {
        specIntLikeMix(), specFpLikeMix(), x264LikeMix(),
        memBoundMix(),    branchyMix(),
    };
    ProgramMix compute = baseMix("compute-dense");
    compute.weights[static_cast<std::size_t>(OpClass::IntAlu)] = 0.60;
    compute.weights[static_cast<std::size_t>(OpClass::Branch)] = 0.08;
    compute.depLocality = 4.0;
    mixes.push_back(compute);

    ProgramMix mul_heavy = baseMix("mul-moderate");
    mul_heavy.mulChainLen = 8.0;
    mul_heavy.weights[static_cast<std::size_t>(OpClass::IntMul)] =
        0.004 / 8.0;
    mixes.push_back(mul_heavy);

    ProgramMix fp_vec = specFpLikeMix();
    fp_vec.name = "fp-vector";
    fp_vec.weights[static_cast<std::size_t>(OpClass::SimdAlu)] = 0.16;
    mixes.push_back(fp_vec);

    return mixes;
}

} // namespace suit::uarch
