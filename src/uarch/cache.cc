#include "uarch/cache.hh"

#include "util/logging.hh"

namespace suit::uarch {

Cache::Cache(const Config &config, Cache *parent)
    : cfg_(config), parent_(parent)
{
    SUIT_ASSERT(cfg_.lineBytes > 0 &&
                    (cfg_.lineBytes & (cfg_.lineBytes - 1)) == 0,
                "line size must be a power of two");
    SUIT_ASSERT(cfg_.associativity > 0, "associativity must be > 0");
    const std::uint64_t lines = cfg_.sizeBytes /
                                static_cast<std::uint64_t>(
                                    cfg_.lineBytes);
    SUIT_ASSERT(lines % static_cast<std::uint64_t>(
                            cfg_.associativity) ==
                    0,
                "cache '%s': size/assoc mismatch", cfg_.name.c_str());
    numSets_ = static_cast<std::size_t>(
        lines / static_cast<std::uint64_t>(cfg_.associativity));
    SUIT_ASSERT(numSets_ > 0 && (numSets_ & (numSets_ - 1)) == 0,
                "cache '%s': set count must be a power of two",
                cfg_.name.c_str());
    lines_.assign(lines, Line{});
}

std::size_t
Cache::setIndex(std::uint64_t addr) const
{
    return static_cast<std::size_t>(
        (addr / static_cast<std::uint64_t>(cfg_.lineBytes)) &
        (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr / static_cast<std::uint64_t>(cfg_.lineBytes) /
           numSets_;
}

int
Cache::access(std::uint64_t addr, int miss_to_memory_latency)
{
    ++accesses_;
    ++useClock_;
    const std::size_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *entry = &lines_[set * static_cast<std::size_t>(
                                    cfg_.associativity)];

    for (int w = 0; w < cfg_.associativity; ++w) {
        Line &line = entry[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            return cfg_.hitLatency;
        }
    }

    // Miss: pick an invalid way, else the LRU way.
    Line *victim = nullptr;
    for (int w = 0; w < cfg_.associativity && !victim; ++w) {
        if (!entry[w].valid)
            victim = &entry[w];
    }
    if (!victim) {
        victim = entry;
        for (int w = 1; w < cfg_.associativity; ++w) {
            if (entry[w].lastUse < victim->lastUse)
                victim = &entry[w];
        }
    }

    ++misses_;
    const int below =
        parent_ ? parent_->access(addr, miss_to_memory_latency)
                : miss_to_memory_latency;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return cfg_.hitLatency + below;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::size_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *entry = &lines_[set * static_cast<std::size_t>(
                                          cfg_.associativity)];
    for (int w = 0; w < cfg_.associativity; ++w) {
        if (entry[w].valid && entry[w].tag == tag)
            return true;
    }
    return false;
}

double
Cache::missRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) /
           static_cast<double>(accesses_);
}

MemoryHierarchy::MemoryHierarchy(const Config &config)
    : cfg_(config), llc_(cfg_.llc, nullptr), l1i_(cfg_.l1i, &llc_),
      l1d_(cfg_.l1d, &llc_)
{
}

int
MemoryHierarchy::dataAccess(std::uint64_t addr)
{
    return l1d_.access(addr, cfg_.dramLatency);
}

int
MemoryHierarchy::instAccess(std::uint64_t addr)
{
    return l1i_.access(addr, cfg_.dramLatency);
}

} // namespace suit::uarch
