/**
 * @file
 * Set-associative cache hierarchy (Table 5: 64 kB L1I, 32 kB L1D,
 * 2 MB LLC over DDR4-2400).
 *
 * The latency study needs a realistic distribution of load-use
 * latencies, not bandwidth contention, so the hierarchy is a simple
 * latency model: LRU set-associative arrays chained to a fixed DRAM
 * latency; misses do not contend.
 */

#ifndef SUIT_UARCH_CACHE_HH
#define SUIT_UARCH_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace suit::uarch {

/** One set-associative LRU cache level. */
class Cache
{
  public:
    /** Static geometry + timing. */
    struct Config
    {
        std::string name = "L1";
        std::uint64_t sizeBytes = 32 * 1024;
        int associativity = 8;
        int lineBytes = 64;
        int hitLatency = 4; //!< cycles, including tag check
    };

    /** @param parent next level, or nullptr for the last level. */
    Cache(const Config &config, Cache *parent);

    /**
     * Access @p addr; allocates on miss.
     * @return total latency in cycles including lower levels.
     */
    int access(std::uint64_t addr, int miss_to_memory_latency);

    /** Lookup without allocation or stats (for tests). */
    bool contains(std::uint64_t addr) const;

    /** @{ Statistics. */
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const;
    /** @} */

    const Config &config() const { return cfg_; }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    Config cfg_;
    Cache *parent_;
    std::vector<Line> lines_;
    std::size_t numSets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;

    std::size_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;
};

/** The Table 5 memory system: L1I + L1D -> shared LLC -> DRAM. */
class MemoryHierarchy
{
  public:
    /** Timing configuration. */
    struct Config
    {
        Cache::Config l1i{"L1I", 64 * 1024, 8, 64, 1};
        Cache::Config l1d{"L1D", 32 * 1024, 8, 64, 4};
        Cache::Config llc{"LLC", 2 * 1024 * 1024, 16, 64, 35};
        /** DDR4-2400 round trip at 3 GHz, in core cycles. */
        int dramLatency = 220;
    };

    /** Build with the Table 5 defaults. */
    MemoryHierarchy() : MemoryHierarchy(Config{}) {}

    explicit MemoryHierarchy(const Config &config);

    /** Data access latency in cycles. */
    int dataAccess(std::uint64_t addr);
    /** Instruction fetch latency in cycles. */
    int instAccess(std::uint64_t addr);

    /** @{ Component access (read-only, for stats). */
    const Cache &l1d() const { return l1d_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &llc() const { return llc_; }
    /** @} */

  private:
    Config cfg_;
    Cache llc_;
    Cache l1i_;
    Cache l1d_;
};

} // namespace suit::uarch

#endif // SUIT_UARCH_CACHE_HH
