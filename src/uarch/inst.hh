/**
 * @file
 * Dynamic instruction representation for the out-of-order model.
 *
 * The microarchitectural study (paper Sec. 6.1, Table 5, Fig. 14)
 * needs timing, not architectural values: instructions carry an
 * operation class, register dependencies and, for memory operations,
 * an address.  Faultable instructions additionally carry their
 * FaultableKind so the #DO trap logic can check them against the
 * disable-opcode MSR.
 */

#ifndef SUIT_UARCH_INST_HH
#define SUIT_UARCH_INST_HH

#include <cstdint>
#include <optional>

#include "isa/faultable.hh"

namespace suit::uarch {

/** Functional classes the pipeline distinguishes. */
enum class OpClass : std::uint8_t
{
    IntAlu,   //!< add/sub/logic/shift, 1 cycle
    IntMul,   //!< IMUL: 3 cycles stock, 4 with SUIT (Sec. 4.2)
    IntDiv,   //!< unpipelined long-latency divide
    FpAlu,    //!< FP add/compare
    FpMul,    //!< FP multiply
    FpDiv,    //!< unpipelined FP divide / sqrt
    SimdAlu,  //!< vector integer/logic ops
    Aes,      //!< AES-NI round
    Load,
    Store,
    Branch,
    NumClasses,
};

/** Number of operation classes. */
constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** Printable op-class name. */
const char *toString(OpClass op);

/** Number of architectural registers the generator uses. */
constexpr int kNumArchRegs = 16;

/** One (static) instruction of a synthetic program. */
struct Inst
{
    /** Functional class. */
    OpClass op = OpClass::IntAlu;
    /** Destination architectural register; -1 = none (store/branch). */
    std::int8_t dst = -1;
    /** First source register; -1 = none. */
    std::int8_t src1 = -1;
    /** Second source register; -1 = none. */
    std::int8_t src2 = -1;
    /** Byte address for loads/stores. */
    std::uint64_t addr = 0;
    /** Sequential-stream access (covered by the stride prefetcher). */
    bool streamingHint = false;
    /** Branch outcome for conditional branches. */
    bool taken = false;
    /**
     * For SIMD/AES/IMUL instructions of the faultable set: which
     * Table 1 class this is (checked against the disable MSR).
     */
    std::optional<suit::isa::FaultableKind> faultable;

    /** True for loads and stores. */
    bool isMem() const
    {
        return op == OpClass::Load || op == OpClass::Store;
    }
    /** True for control-flow instructions. */
    bool isBranch() const { return op == OpClass::Branch; }
};

} // namespace suit::uarch

#endif // SUIT_UARCH_INST_HH
