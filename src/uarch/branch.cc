#include "uarch/branch.hh"

#include "util/logging.hh"

namespace suit::uarch {

GsharePredictor::GsharePredictor(int table_bits, int history_bits)
{
    SUIT_ASSERT(table_bits >= 4 && table_bits <= 24,
                "unreasonable gshare table size 2^%d", table_bits);
    SUIT_ASSERT(history_bits >= 0 && history_bits <= table_bits,
                "history must fit in the index");
    table_.assign(1ull << table_bits, 1); // weakly not-taken
    mask_ = (1ull << table_bits) - 1;
    historyMask_ =
        history_bits == 0 ? 0 : (1ull << history_bits) - 1;
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        ((pc >> 2) ^ (history_ & historyMask_)) & mask_);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    ++lookups_;
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    const bool predicted = ctr >= 2;
    if (predicted != taken)
        ++mispredicts_;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

} // namespace suit::uarch
