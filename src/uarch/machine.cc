#include "uarch/machine.hh"

#include <optional>

#include "emu/dispatcher.hh"
#include "obs/registry.hh"
#include "util/logging.hh"

namespace suit::uarch {

using suit::power::SuitPState;
using suit::util::Tick;
using Cycle = std::uint64_t;

/**
 * CpuControl in the cycle domain: translates the strategy's p-state
 * requests into charged pipeline cycles and a p-state timeline.
 */
class SuitMachine::CycleCpu final : public suit::core::CpuControl
{
  public:
    CycleCpu(const Config &cfg, SuitPState initial)
        : cfg_(cfg), rng_(cfg.seed * 131 + 7), pstate_(initial)
    {
        log_.push_back({0, pstate_});
    }

    /** Advance to an event (trap/alarm) at @p when. */
    void
    beginEvent(Cycle when)
    {
        now_ = std::max(now_, when);
        commitPendingUpTo(now_);
    }

    /** Cycles charged by the strategy since the last collection. */
    Cycle
    takeChargedCycles()
    {
        const Cycle c = charged_;
        charged_ = 0;
        return c;
    }

    /** Alarm reload requested since the last collection (cycles). */
    Cycle
    takeArmedReload()
    {
        const Cycle r = armReload_;
        armReload_ = 0;
        return r;
    }

    /** Commit any due pending switch and return the timeline. */
    const std::vector<std::pair<Cycle, SuitPState>> &
    finalize(Cycle total_cycles)
    {
        commitPendingUpTo(total_cycles);
        return log_;
    }

    // ---- CpuControl ------------------------------------------------
    void
    changePStateWait(SuitPState target) override
    {
        pending_.reset();
        if (pstate_ == target)
            return;
        const Cycle delay = transitionCycles(pstate_, target);
        charged_ += delay;
        now_ += delay;
        pstate_ = target;
        log_.push_back({now_, pstate_});
    }

    void
    changePStateAsync(SuitPState target) override
    {
        pending_.reset();
        if (pstate_ == target)
            return;
        pending_ = {now_ + transitionCycles(pstate_, target), target};
    }

    void cancelPendingPState() override { pending_.reset(); }

    void setInstructionsDisabled(bool d) override { disabled_ = d; }

    void
    setTimerInterrupt(Tick reload) override
    {
        armReload_ = ticksToCycles(reload);
    }

    SuitPState currentPState() const override { return pstate_; }
    bool instructionsDisabled() const override { return disabled_; }

    Tick
    now() const override
    {
        return cyclesToTicks(now_);
    }

  private:
    const Config &cfg_;
    suit::util::Rng rng_;
    Cycle now_ = 0;
    SuitPState pstate_;
    bool disabled_ = false;
    std::optional<std::pair<Cycle, SuitPState>> pending_;
    std::vector<std::pair<Cycle, SuitPState>> log_;
    Cycle charged_ = 0;
    Cycle armReload_ = 0;

    Cycle
    ticksToCycles(Tick t) const
    {
        return static_cast<Cycle>(suit::util::ticksToSeconds(t) *
                                  cfg_.cpu->baseFreqHz());
    }

    Tick
    cyclesToTicks(Cycle c) const
    {
        return suit::util::secondsToTicks(
            static_cast<double>(c) / cfg_.cpu->baseFreqHz());
    }

    Cycle
    transitionCycles(SuitPState from, SuitPState to)
    {
        const auto &tm = cfg_.cpu->transitions();
        Tick delay = 0;
        const bool from_low = from == SuitPState::ConservativeFreq;
        const bool to_low = to == SuitPState::ConservativeFreq;
        const bool from_hi = from == SuitPState::ConservativeVolt;
        const bool to_hi = to == SuitPState::ConservativeVolt;
        if (from_hi != to_hi)
            delay += tm.voltageChange.sample(rng_);
        if (from_low != to_low)
            delay += tm.freqChange.sample(rng_);
        return ticksToCycles(delay);
    }

    void
    commitPendingUpTo(Cycle when)
    {
        if (pending_ && pending_->first <= when) {
            pstate_ = pending_->second;
            log_.push_back(*pending_);
            pending_.reset();
        }
    }
};

SuitMachine::SuitMachine(const Config &config) : cfg_(config)
{
    SUIT_ASSERT(cfg_.cpu != nullptr, "machine needs a CPU model");
}

void
publishCoreStats(const CoreStats &stats)
{
    suit::obs::Registry &reg = suit::obs::metrics();
    if (!reg.enabled())
        return;

    reg.add(reg.counter("uarch.runs"));
    reg.add(reg.counter("uarch.instructions"), stats.instructions);
    reg.add(reg.counter("uarch.cycles"), stats.cycles);
    reg.add(reg.counter("uarch.branches"), stats.branches);
    reg.add(reg.counter("uarch.mispredicts"), stats.mispredicts);
    reg.add(reg.counter("uarch.loads"), stats.loads);
    reg.add(reg.counter("uarch.stores"), stats.stores);
    reg.add(reg.counter("uarch.l1d_misses"), stats.l1dMisses);
    reg.add(reg.counter("uarch.llc_misses"), stats.llcMisses);
    reg.add(reg.counter("uarch.do_traps"), stats.traps);
    reg.add(reg.counter("uarch.emulations"), stats.emulated);
}

namespace {

/** Integrate wall-clock and power over the p-state timeline. */
void
accountTimeline(
    const SuitMachine::Config &cfg,
    const std::vector<std::pair<Cycle, SuitPState>> &timeline,
    Cycle total_cycles, MachineResult &out)
{
    const double base_hz = cfg.cpu->baseFreqHz();
    double seconds = 0.0;
    double power_int = 0.0;
    double efficient_s = 0.0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
        const Cycle start = timeline[i].first;
        const Cycle end = i + 1 < timeline.size()
                              ? timeline[i + 1].first
                              : total_cycles;
        if (end <= start)
            continue;
        const SuitPState state = timeline[i].second;
        double hz = base_hz;
        switch (state) {
          case SuitPState::Efficient:
            hz = base_hz *
                 (1.0 + cfg.cpu->undervolt().at(cfg.offsetMv)
                            .freqDelta);
            break;
          case SuitPState::ConservativeFreq:
            hz = cfg.cpu->cfFreqHz(cfg.offsetMv);
            break;
          case SuitPState::ConservativeVolt:
            break;
        }
        const double dt =
            static_cast<double>(end - start) / hz;
        seconds += dt;
        power_int += dt * cfg.cpu->powerFactor(state, cfg.offsetMv);
        if (state == SuitPState::Efficient)
            efficient_s += dt;
    }
    out.seconds = seconds;
    out.powerFactor = seconds > 0.0 ? power_int / seconds : 1.0;
    out.efficientShare = seconds > 0.0 ? efficient_s / seconds : 0.0;
}

} // namespace

MachineResult
SuitMachine::runBaseline(const Program &program)
{
    CoreConfig core_cfg = cfg_.core;
    core_cfg.setImulLatency(3); // stock hardware
    O3Model core(core_cfg);

    MachineResult r;
    r.stats = core.run(program);
    publishCoreStats(r.stats);
    r.seconds =
        static_cast<double>(r.stats.cycles) / cfg_.cpu->baseFreqHz();
    r.powerFactor = 1.0;
    r.efficientShare = 0.0;
    return r;
}

MachineResult
SuitMachine::runSuit(const Program &program)
{
    CoreConfig core_cfg = cfg_.core;
    core_cfg.setImulLatency(4); // SUIT hardware (Sec. 4.2)
    O3Model core(core_cfg);

    CycleCpu cpu(cfg_, SuitPState::ConservativeVolt);
    suit::core::SuitController controller(cpu, msrs_, cfg_.strategy,
                                          cfg_.params);
    controller.enable(); // MSRs on, async switch to E at cycle 0

    const suit::isa::FaultableSet trap_set =
        suit::isa::FaultableSet::suitTrapSet();
    core.setDisabledSet(trap_set);

    const double base_hz = cfg_.cpu->baseFreqHz();
    const Cycle emu_roundtrip = static_cast<Cycle>(
        cfg_.cpu->emulationCallUs() * 1e-6 * base_hz);
    const Cycle trap_penalty =
        static_cast<Cycle>(core_cfg.trapPenalty);

    core.setTrapHandler([&](suit::isa::FaultableKind kind,
                            std::uint64_t seq, std::uint64_t when) {
        cpu.beginEvent(when);
        suit::os::TrapFrame frame;
        frame.kind = kind;
        frame.instructionIndex = seq;
        frame.when = cpu.now();
        const suit::core::TrapAction action =
            controller.handleDisabledOpcode(frame);

        UarchTrapAction ua;
        ua.emulate = action.emulated;
        ua.extraCycles = cpu.takeChargedCycles();
        if (action.emulated) {
            // The full round trip replaces the plain trap entry.
            const Cycle body = static_cast<Cycle>(
                suit::emu::emulationCostCycles(kind));
            ua.extraCycles +=
                (emu_roundtrip > trap_penalty
                     ? emu_roundtrip - trap_penalty
                     : 0) +
                body;
        }
        ua.newDisabledSet = cpu.instructionsDisabled()
                                ? trap_set
                                : suit::isa::FaultableSet{};
        ua.armAlarmCycles = cpu.takeArmedReload();
        return ua;
    });

    core.setAlarmHandler([&](std::uint64_t when) {
        cpu.beginEvent(when);
        controller.handleTimerInterrupt();
        return cpu.instructionsDisabled()
                   ? trap_set
                   : suit::isa::FaultableSet{};
    });

    MachineResult r;
    r.stats = core.run(program);
    publishCoreStats(r.stats);
    accountTimeline(cfg_, cpu.finalize(r.stats.cycles),
                    r.stats.cycles, r);
    return r;
}

} // namespace suit::uarch
