/**
 * @file
 * Full-system SUIT machine at cycle level.
 *
 * The paper's gem5 contribution is the wiring: the DISABLE_OPCODE /
 * DVFS_CURVE MSRs, the #DO exception raised precisely at dispatch, a
 * modified kernel handler, and the deadline timer (Sec. 6.1).
 * SuitMachine reproduces that wiring on top of the O3 model: it owns
 * the MSR file and a SuitController, translates the controller's
 * CpuControl calls (tick domain) into pipeline cycles, accounts
 * wall-clock time and power per p-state, and reports end-to-end
 * results against a no-SUIT baseline run.
 *
 * Cycle/tick conversion uses the base frequency; the E/Cf frequency
 * difference (~10 %) is folded into the wall-clock integration, not
 * into the deadline arithmetic — a documented approximation.
 */

#ifndef SUIT_UARCH_MACHINE_HH
#define SUIT_UARCH_MACHINE_HH

#include <vector>

#include "core/controller.hh"
#include "core/params.hh"
#include "os/msr.hh"
#include "power/cpu_model.hh"
#include "uarch/o3_model.hh"
#include "util/rng.hh"

namespace suit::uarch {

/** End-to-end result of one machine run. */
struct MachineResult
{
    /** Pipeline statistics. */
    CoreStats stats;
    /** Wall-clock runtime in seconds (cycles / per-state freq). */
    double seconds = 0.0;
    /** Time-weighted power factor vs the conservative baseline. */
    double powerFactor = 1.0;
    /** Share of wall-clock time on the efficient curve. */
    double efficientShare = 0.0;

    /** Energy relative to (baseline power x this run's seconds). */
    double
    energyFactorVs(const MachineResult &baseline) const
    {
        return powerFactor * seconds /
               (baseline.powerFactor * baseline.seconds);
    }
};

/**
 * Publish @p stats into the obs metrics registry as uarch.* counters
 * (pipeline commits/cycles, branch outcomes, cache misses, #DO
 * traps).  No-op while the registry is disabled.  SuitMachine calls
 * this after every run; exposed for tools that drive O3Model
 * directly.
 */
void publishCoreStats(const CoreStats &stats);

/** The assembled machine: O3 core + MSRs + SUIT controller. */
class SuitMachine
{
  public:
    /** Machine configuration. */
    struct Config
    {
        /** Power/DVFS description (not owned). */
        const suit::power::CpuModel *cpu = nullptr;
        /** Pipeline configuration (IMUL latency is set per run). */
        CoreConfig core;
        /** Efficient-curve offset (negative mV). */
        double offsetMv = -97.0;
        /** Operating strategy. */
        suit::core::StrategyKind strategy =
            suit::core::StrategyKind::CombinedFv;
        /** Strategy parameters. */
        suit::core::StrategyParams params;
        /** Transition-jitter seed. */
        std::uint64_t seed = 1;
    };

    explicit SuitMachine(const Config &config);

    /**
     * Run @p program on today's CPU: 3-cycle IMUL, conservative
     * curve, nothing disabled.
     */
    MachineResult runBaseline(const Program &program);

    /**
     * Run @p program with SUIT enabled: 4-cycle IMUL, trap set
     * disabled, efficient curve, the configured strategy fielding
     * #DO exceptions and deadline interrupts.
     */
    MachineResult runSuit(const Program &program);

    /** The MSR file (inspect the SUIT registers after a run). */
    const suit::os::MsrFile &msrs() const { return msrs_; }

  private:
    /** CpuControl implementation in the cycle domain. */
    class CycleCpu;

    Config cfg_;
    suit::os::MsrFile msrs_;
};

} // namespace suit::uarch

#endif // SUIT_UARCH_MACHINE_HH
