/**
 * @file
 * AVX2 arrival-scan kernel (see simd_ops.hh, "Host-side SIMD
 * kernels").
 *
 * Compiled as its own translation unit with -mavx2 — only this file
 * may contain AVX2 instructions, and every entry point checks the
 * host CPU at runtime before touching them, so the rest of the build
 * stays runnable on any x86-64.  x86 has no unsigned 64-bit compare
 * below AVX-512: the kernel biases both operands by 2^63 (flipping
 * the sign bit) so the signed VPCMPGTQ orders them as unsigned.
 */

#include "emu/simd_ops.hh"

#if defined(SUIT_HAVE_AVX2_SCAN)

#include <immintrin.h>

namespace suit::emu {

namespace {

bool
hostHasAvx2()
{
    static const bool has = __builtin_cpu_supports("avx2");
    return has;
}

} // namespace

bool
vectorScanAvailable()
{
    return hostHasAvx2();
}

std::size_t
minIndexU64Vector(const std::uint64_t *values, std::size_t count)
{
    if (!hostHasAvx2() || count < 4)
        return minIndexU64Scalar(values, count);

    const __m256i sign = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    // Biased running minimum, 4 lanes.
    __m256i best = _mm256_xor_si256(
        _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values)),
        sign);
    std::size_t i = 4;
    for (; i + 4 <= count; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(values + i)),
            sign);
        // best > v (signed on biased values == unsigned raw):
        // take v.
        const __m256i gt = _mm256_cmpgt_epi64(best, v);
        best = _mm256_blendv_epi8(best, v, gt);
    }

    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lane),
                       _mm256_xor_si256(best, sign));
    std::uint64_t min_v = lane[0];
    for (int k = 1; k < 4; ++k)
        min_v = lane[k] < min_v ? lane[k] : min_v;
    for (; i < count; ++i)
        min_v = values[i] < min_v ? values[i] : min_v;

    // Second pass: the first position holding the minimum, so ties
    // resolve to the lowest index exactly like the scalar loop.
    for (std::size_t j = 0; j < count; ++j) {
        if (values[j] == min_v)
            return j;
    }
    return 0; // unreachable: min_v came from values
}

} // namespace suit::emu

#endif // defined(SUIT_HAVE_AVX2_SCAN)
