/**
 * @file
 * AES round primitives: reference (table-based) and bit-sliced.
 *
 * SUIT emulates a trapped AESENC "with a side-channel-resilient
 * bit-sliced AES implementation" (paper Sec. 3.4).  This header
 * provides both the table-based reference semantics (the golden
 * model, validated against FIPS-197) and the constant-time
 * bit-sliced implementation the OS actually dispatches: the S-box is
 * computed as GF(2^8) inversion + affine transform on bit planes,
 * with no data-dependent memory access anywhere.
 */

#ifndef SUIT_EMU_AES_HH
#define SUIT_EMU_AES_HH

#include <array>
#include <cstdint>

namespace suit::emu {

/** One 128-bit AES state / round key, byte 0 first (x86 layout). */
using AesBlock = std::array<std::uint8_t, 16>;

/** @{ Reference (table-based) primitives. */

/** The AES S-box applied to one byte. */
std::uint8_t aesSubByte(std::uint8_t b);

/**
 * One AESENC round exactly as the x86 instruction defines it:
 * ShiftRows, SubBytes, MixColumns, AddRoundKey.
 */
AesBlock aesencRound(const AesBlock &state, const AesBlock &round_key);

/**
 * One AESENCLAST round: ShiftRows, SubBytes, AddRoundKey (no
 * MixColumns).
 */
AesBlock aesenclastRound(const AesBlock &state,
                         const AesBlock &round_key);

/** The inverse S-box applied to one byte. */
std::uint8_t aesInvSubByte(std::uint8_t b);

/**
 * One AESDEC round exactly as the x86 instruction defines it:
 * InvShiftRows, InvSubBytes, InvMixColumns, AddRoundKey.  Like on
 * real hardware, the round key must be pre-transformed with
 * aesimc() for the equivalent inverse cipher.
 */
AesBlock aesdecRound(const AesBlock &state, const AesBlock &round_key);

/** One AESDECLAST round: InvShiftRows, InvSubBytes, AddRoundKey. */
AesBlock aesdeclastRound(const AesBlock &state,
                         const AesBlock &round_key);

/** AESIMC: InvMixColumns, used to transform decryption round keys. */
AesBlock aesimc(const AesBlock &round_key);

/** @} */

/** @{ Bit-sliced (constant-time) primitives with identical results. */

/** AESENC round computed without any table lookups. */
AesBlock aesencRoundBitsliced(const AesBlock &state,
                              const AesBlock &round_key);

/** AESENCLAST round computed without any table lookups. */
AesBlock aesenclastRoundBitsliced(const AesBlock &state,
                                  const AesBlock &round_key);

/** @} */

/**
 * AES-128 built from the round primitives, used to validate the
 * emulation against the FIPS-197 vectors and by the secure-service
 * example.
 */
class Aes128
{
  public:
    /** Expand a 16-byte key into the 11 round keys. */
    explicit Aes128(const AesBlock &key);

    /** Encrypt one block with the reference rounds. */
    AesBlock encrypt(const AesBlock &plaintext) const;

    /** Encrypt one block with the bit-sliced rounds. */
    AesBlock encryptBitsliced(const AesBlock &plaintext) const;

    /**
     * Decrypt one block via the equivalent inverse cipher (AESDEC
     * rounds over aesimc-transformed keys, the AES-NI decryption
     * idiom).
     */
    AesBlock decrypt(const AesBlock &ciphertext) const;

    /** Round key @p i (0..10). */
    const AesBlock &roundKey(int i) const;

  private:
    std::array<AesBlock, 11> roundKeys_{};
};

/** @{ Bit-plane helpers, exposed for the property tests. */

/** 8 bit planes over the 16 state bytes (plane b bit j = state
 *  byte j bit b). */
using AesPlanes = std::array<std::uint16_t, 8>;

/** Transpose a block into bit planes. */
AesPlanes aesToPlanes(const AesBlock &block);

/** Transpose bit planes back into a block. */
AesBlock aesFromPlanes(const AesPlanes &planes);

/** GF(2^8) multiply (AES polynomial 0x11B) on bit planes. */
AesPlanes gfMulPlanes(const AesPlanes &a, const AesPlanes &b);

/** GF(2^8) inversion (x^254; 0 maps to 0) on bit planes. */
AesPlanes gfInvPlanes(const AesPlanes &a);

/** @} */

} // namespace suit::emu

#endif // SUIT_EMU_AES_HH
