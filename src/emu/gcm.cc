#include "emu/gcm.hh"

#include "util/logging.hh"

namespace suit::emu {

Gf128
gf128FromBlock(const AesBlock &block)
{
    Gf128 e;
    for (int i = 0; i < 8; ++i) {
        e.hi = (e.hi << 8) | block[static_cast<std::size_t>(i)];
        e.lo = (e.lo << 8) | block[static_cast<std::size_t>(i + 8)];
    }
    return e;
}

AesBlock
gf128ToBlock(const Gf128 &element)
{
    AesBlock b{};
    for (int i = 0; i < 8; ++i) {
        b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
            element.hi >> (56 - 8 * i));
        b[static_cast<std::size_t>(i + 8)] =
            static_cast<std::uint8_t>(element.lo >> (56 - 8 * i));
    }
    return b;
}

Gf128
gf128Mul(const Gf128 &x, const Gf128 &y)
{
    // Right-shift algorithm of SP 800-38D: walk the bits of x from
    // the most significant bit of byte 0; V starts at y and is
    // multiplied by the inverse of x each step, with the reduction
    // constant R = 0xE1 << 120.  All operations are constant time.
    Gf128 z{};
    Gf128 v = y;
    for (int i = 0; i < 128; ++i) {
        const std::uint64_t x_bit =
            (i < 64) ? (x.hi >> (63 - i)) & 1
                     : (x.lo >> (127 - i)) & 1;
        const std::uint64_t mask_z =
            0ULL - x_bit; // all-ones if the bit is set
        z.hi ^= v.hi & mask_z;
        z.lo ^= v.lo & mask_z;

        const std::uint64_t lsb = v.lo & 1;
        const std::uint64_t mask_r = 0ULL - lsb;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi = (v.hi >> 1) ^ (mask_r & 0xE100000000000000ULL);
    }
    return z;
}

Gf128
ghash(const Gf128 &h, const std::vector<std::uint8_t> &data)
{
    Gf128 y{};
    for (std::size_t off = 0; off < data.size(); off += 16) {
        AesBlock block{};
        const std::size_t n = std::min<std::size_t>(16,
                                                    data.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            block[i] = data[off + i];
        const Gf128 x = gf128FromBlock(block);
        y.hi ^= x.hi;
        y.lo ^= x.lo;
        y = gf128Mul(y, h);
    }
    return y;
}

Aes128Gcm::Aes128Gcm(const AesBlock &key) : aes_(key)
{
    h_ = gf128FromBlock(aes_.encryptBitsliced(AesBlock{}));
}

AesBlock
Aes128Gcm::counterBlock(const std::vector<std::uint8_t> &iv,
                        std::uint32_t counter) const
{
    SUIT_ASSERT(iv.size() == 12, "GCM here supports 96-bit IVs only");
    AesBlock j{};
    for (int i = 0; i < 12; ++i)
        j[static_cast<std::size_t>(i)] =
            iv[static_cast<std::size_t>(i)];
    j[12] = static_cast<std::uint8_t>(counter >> 24);
    j[13] = static_cast<std::uint8_t>(counter >> 16);
    j[14] = static_cast<std::uint8_t>(counter >> 8);
    j[15] = static_cast<std::uint8_t>(counter);
    return j;
}

AesBlock
Aes128Gcm::tagFor(const std::vector<std::uint8_t> &iv,
                  const std::vector<std::uint8_t> &ciphertext,
                  const std::vector<std::uint8_t> &aad) const
{
    // S = GHASH_H(pad(A) || pad(C) || len64(A) || len64(C)).
    Gf128 y{};
    auto absorb = [&](const std::vector<std::uint8_t> &bytes) {
        for (std::size_t off = 0; off < bytes.size(); off += 16) {
            AesBlock block{};
            const std::size_t n =
                std::min<std::size_t>(16, bytes.size() - off);
            for (std::size_t i = 0; i < n; ++i)
                block[i] = bytes[off + i];
            const Gf128 x = gf128FromBlock(block);
            y.hi ^= x.hi;
            y.lo ^= x.lo;
            y = gf128Mul(y, h_);
        }
    };
    absorb(aad);
    absorb(ciphertext);

    Gf128 lengths;
    lengths.hi = static_cast<std::uint64_t>(aad.size()) * 8;
    lengths.lo = static_cast<std::uint64_t>(ciphertext.size()) * 8;
    y.hi ^= lengths.hi;
    y.lo ^= lengths.lo;
    y = gf128Mul(y, h_);

    // T = E_K(J0) xor S.
    const AesBlock ekj0 =
        aes_.encryptBitsliced(counterBlock(iv, 1));
    AesBlock s = gf128ToBlock(y);
    for (std::size_t i = 0; i < 16; ++i)
        s[i] ^= ekj0[i];
    return s;
}

GcmSealed
Aes128Gcm::seal(const std::vector<std::uint8_t> &iv,
                const std::vector<std::uint8_t> &plaintext,
                const std::vector<std::uint8_t> &aad) const
{
    GcmSealed out;
    out.ciphertext.resize(plaintext.size());
    std::uint32_t counter = 2; // J0 uses counter 1
    for (std::size_t off = 0; off < plaintext.size(); off += 16) {
        const AesBlock keystream =
            aes_.encryptBitsliced(counterBlock(iv, counter++));
        const std::size_t n =
            std::min<std::size_t>(16, plaintext.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out.ciphertext[off + i] = plaintext[off + i] ^ keystream[i];
    }
    out.tag = tagFor(iv, out.ciphertext, aad);
    return out;
}

bool
Aes128Gcm::open(const std::vector<std::uint8_t> &iv,
                const std::vector<std::uint8_t> &ciphertext,
                const AesBlock &tag,
                std::vector<std::uint8_t> *plaintext,
                const std::vector<std::uint8_t> &aad) const
{
    SUIT_ASSERT(plaintext != nullptr, "open() needs an output");
    const AesBlock expect = tagFor(iv, ciphertext, aad);
    // Constant-time comparison.
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < 16; ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return false;

    plaintext->resize(ciphertext.size());
    std::uint32_t counter = 2;
    for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
        const AesBlock keystream =
            aes_.encryptBitsliced(counterBlock(iv, counter++));
        const std::size_t n =
            std::min<std::size_t>(16, ciphertext.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            (*plaintext)[off + i] = ciphertext[off + i] ^ keystream[i];
    }
    return true;
}

} // namespace suit::emu
