#include "emu/simd_ops.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/logging.hh"

namespace suit::emu {

Vec256
vor(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setU64(i, a.u64(i) | b.u64(i));
    return r;
}

Vec256
vxor(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setU64(i, a.u64(i) ^ b.u64(i));
    return r;
}

Vec256
vand(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setU64(i, a.u64(i) & b.u64(i));
    return r;
}

Vec256
vandn(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setU64(i, ~a.u64(i) & b.u64(i));
    return r;
}

Vec256
vpaddq(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setU64(i, a.u64(i) + b.u64(i));
    return r;
}

Vec256
vpsrad(const Vec256 &a, int count)
{
    SUIT_ASSERT(count >= 0, "negative shift count %d", count);
    Vec256 r;
    for (int i = 0; i < 8; ++i) {
        const auto lane = static_cast<std::int32_t>(a.u32(i));
        std::int32_t shifted;
        if (count >= 32)
            shifted = lane < 0 ? -1 : 0;
        else
            shifted = lane >> count;
        r.setU32(i, static_cast<std::uint32_t>(shifted));
    }
    return r;
}

Vec256
vpcmpgtd(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 8; ++i) {
        const auto la = static_cast<std::int32_t>(a.u32(i));
        const auto lb = static_cast<std::int32_t>(b.u32(i));
        r.setU32(i, la > lb ? 0xFFFFFFFFu : 0u);
    }
    return r;
}

Vec256
vpmaxsd(const Vec256 &a, const Vec256 &b)
{
    Vec256 r;
    for (int i = 0; i < 8; ++i) {
        const auto la = static_cast<std::int32_t>(a.u32(i));
        const auto lb = static_cast<std::int32_t>(b.u32(i));
        r.setU32(i, static_cast<std::uint32_t>(la > lb ? la : lb));
    }
    return r;
}

Vec256
vsqrtpd(const Vec256 &a)
{
    Vec256 r;
    for (int i = 0; i < 4; ++i)
        r.setF64(i, std::sqrt(a.f64(i)));
    return r;
}

std::uint64_t
clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t *hi)
{
    std::uint64_t lo = 0;
    std::uint64_t high = 0;
    for (int i = 0; i < 64; ++i) {
        if ((b >> i) & 1) {
            lo ^= a << i;
            if (i > 0)
                high ^= a >> (64 - i);
        }
    }
    if (hi)
        *hi = high;
    return lo;
}

Vec256
vpclmulqdq(const Vec256 &a, const Vec256 &b, int imm)
{
    Vec256 r;
    for (int lane = 0; lane < 2; ++lane) {
        const std::uint64_t qa = a.u64(2 * lane + ((imm >> 0) & 1));
        const std::uint64_t qb = b.u64(2 * lane + ((imm >> 4) & 1));
        std::uint64_t hi = 0;
        const std::uint64_t lo = clmul64(qa, qb, &hi);
        r.setU64(2 * lane, lo);
        r.setU64(2 * lane + 1, hi);
    }
    return r;
}

Int128
imulFull(std::int64_t a, std::int64_t b)
{
    const __int128 p = static_cast<__int128>(a) * b;
    Int128 r;
    r.lo = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(p));
    r.hi = static_cast<std::int64_t>(p >> 64);
    return r;
}

namespace {

ScanImpl
scanImplFromEnv()
{
    const char *env = std::getenv("SUIT_ARRIVAL_SCAN");
    if (env == nullptr)
        return ScanImpl::Auto;
    const std::string_view v{env};
    if (v == "scalar")
        return ScanImpl::Scalar;
    if (v == "vector")
        return ScanImpl::Vector;
    return ScanImpl::Auto;
}

std::atomic<ScanImpl> g_scanImpl{scanImplFromEnv()};

} // namespace

void
setArrivalScanImpl(ScanImpl impl)
{
    g_scanImpl.store(impl, std::memory_order_relaxed);
}

ScanImpl
arrivalScanImpl()
{
    return g_scanImpl.load(std::memory_order_relaxed);
}

std::size_t
minIndexU64Scalar(const std::uint64_t *values, std::size_t count)
{
    if (count == 0)
        return 0;
    std::size_t best = 0;
    std::uint64_t best_v = values[0];
    for (std::size_t i = 1; i < count; ++i) {
        // Strict <: ties keep the earlier (lower) index.
        if (values[i] < best_v) {
            best_v = values[i];
            best = i;
        }
    }
    return best;
}

#if !defined(SUIT_HAVE_AVX2_SCAN)

bool
vectorScanAvailable()
{
    return false;
}

std::size_t
minIndexU64Vector(const std::uint64_t *values, std::size_t count)
{
    return minIndexU64Scalar(values, count);
}

#endif // !defined(SUIT_HAVE_AVX2_SCAN)

std::size_t
minIndexU64(const std::uint64_t *values, std::size_t count)
{
    switch (arrivalScanImpl()) {
      case ScanImpl::Scalar:
        return minIndexU64Scalar(values, count);
      case ScanImpl::Vector:
        return minIndexU64Vector(values, count);
      case ScanImpl::Auto:
      default:
        if (count >= kVectorScanMinLanes && vectorScanAvailable())
            return minIndexU64Vector(values, count);
        return minIndexU64Scalar(values, count);
    }
}

} // namespace suit::emu
