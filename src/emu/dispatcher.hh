/**
 * @file
 * Emulation dispatch for trapped instructions.
 *
 * The #DO handler hands the faulting instruction's operands to this
 * dispatcher, which computes the architectural result in software
 * (paper Sec. 3.4).  All operands and results travel in a uniform
 * 256-bit container so the fault-injection framework can treat every
 * instruction identically.
 */

#ifndef SUIT_EMU_DISPATCHER_HH
#define SUIT_EMU_DISPATCHER_HH

#include "emu/vec.hh"
#include "isa/faultable.hh"

namespace suit::emu {

/** Operands of one trapped instruction. */
struct EmuRequest
{
    /** Which instruction to emulate. */
    suit::isa::FaultableKind kind = suit::isa::FaultableKind::VOR;
    /** First source operand (AES state / IMUL multiplicand in
     *  word 0). */
    Vec256 a;
    /** Second source operand (AES round key / IMUL multiplier). */
    Vec256 b;
    /** Immediate (VPSRAD shift count, VPCLMULQDQ selector). */
    int imm = 0;
};

/**
 * Compute the architectural result of @p req using the scalar /
 * bit-sliced software implementations.
 *
 * IMUL returns the 128-bit product in words 0 (low) and 1 (high);
 * AESENC operates on the low 128 bits (the upper half passes
 * through, matching the legacy-SSE semantics).
 */
Vec256 emulate(const EmuRequest &req);

/**
 * Approximate cost of the emulation body in CPU cycles, used by the
 * simulators to charge the software-emulation time on top of the
 * measured kernel round-trip delay (paper Sec. 5.3).
 */
double emulationCostCycles(suit::isa::FaultableKind kind);

} // namespace suit::emu

#endif // SUIT_EMU_DISPATCHER_HH
