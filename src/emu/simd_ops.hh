/**
 * @file
 * Scalar (non-vectorised) semantics of the faultable SIMD
 * instructions (paper Table 1, Sec. 3.4).
 *
 * These functions are the emulation payloads SUIT's OS maps into a
 * trapped program's address space: each computes the architectural
 * result of one disabled instruction using only scalar operations,
 * so they run safely on the efficient DVFS curve.  They also serve
 * as the golden model for the fault-injection framework.
 */

#ifndef SUIT_EMU_SIMD_OPS_HH
#define SUIT_EMU_SIMD_OPS_HH

#include <cstddef>
#include <cstdint>

#include "emu/vec.hh"

namespace suit::emu {

/** Bitwise OR of two 256-bit values (VOR / VPOR). */
Vec256 vor(const Vec256 &a, const Vec256 &b);

/** Bitwise XOR (VXOR / VPXOR). */
Vec256 vxor(const Vec256 &a, const Vec256 &b);

/** Bitwise AND (VAND / VPAND). */
Vec256 vand(const Vec256 &a, const Vec256 &b);

/** Bitwise AND-NOT: (~a) & b, matching the x86 VANDN convention. */
Vec256 vandn(const Vec256 &a, const Vec256 &b);

/** Packed 64-bit addition, 4 lanes, wrap-around (VPADDQ). */
Vec256 vpaddq(const Vec256 &a, const Vec256 &b);

/**
 * Packed arithmetic shift right of 8 signed 32-bit lanes (VPSRAD).
 * Shift counts >= 32 fill each lane with its sign bit, like the
 * hardware instruction.
 */
Vec256 vpsrad(const Vec256 &a, int count);

/**
 * Packed signed 32-bit compare-greater-than (VPCMPGTD): each lane is
 * all-ones where a > b, else zero.
 */
Vec256 vpcmpgtd(const Vec256 &a, const Vec256 &b);

/** Packed signed 32-bit maximum (VPMAXSD). */
Vec256 vpmaxsd(const Vec256 &a, const Vec256 &b);

/** Packed double-precision square root, 4 lanes (VSQRTPD). */
Vec256 vsqrtpd(const Vec256 &a);

/**
 * Carry-less (GF(2)[x]) multiplication of two 64-bit quadwords
 * selected by @p imm, per 128-bit lane (VPCLMULQDQ).
 *
 * imm bit 0 selects the low/high qword of @p a's lane, bit 4 of
 * @p b's lane; the 128-bit product replaces the lane.
 */
Vec256 vpclmulqdq(const Vec256 &a, const Vec256 &b, int imm);

/**
 * Carry-less multiply of two bare 64-bit values; @p hi receives the
 * upper 64 product bits.  The building block of vpclmulqdq(), used
 * directly by tests and the GHASH example.
 */
std::uint64_t clmul64(std::uint64_t a, std::uint64_t b,
                      std::uint64_t *hi);

/** 64x64 -> 128-bit signed multiply (the IMUL reference semantics). */
struct Int128
{
    std::uint64_t lo = 0;
    std::int64_t hi = 0;

    bool operator==(const Int128 &other) const = default;
};

/** Full signed multiply, returning both product halves. */
Int128 imulFull(std::int64_t a, std::int64_t b);

/**
 * @{ Host-side SIMD kernels.
 *
 * Unlike the emulation payloads above — which model *guest*
 * instructions — these run on behalf of the simulator itself.  The
 * domain simulator's per-event arrival scan is a min-reduction over
 * one unsigned 64-bit tick per core; minIndexU64() is its kernel,
 * with a portable scalar loop and an AVX2 intrinsic variant selected
 * at runtime.
 */

/** Which minIndexU64() implementation to run. */
enum class ScanImpl
{
    /** Scalar for small rows, vector where supported and profitable. */
    Auto,
    /** Always the portable scalar loop. */
    Scalar,
    /** Always the intrinsic kernel (falls back if unsupported). */
    Vector,
};

/**
 * Select the arrival-scan implementation at runtime (thread-safe).
 * The initial value honours the SUIT_ARRIVAL_SCAN environment
 * variable ("auto", "scalar", "vector"); unknown values mean Auto.
 */
void setArrivalScanImpl(ScanImpl impl);

/** Currently selected arrival-scan implementation. */
ScanImpl arrivalScanImpl();

/** True when the AVX2 kernel was compiled in and the CPU has AVX2. */
bool vectorScanAvailable();

/**
 * Row length from which Auto prefers the vector kernel; below it the
 * kernel's setup cost exceeds a scalar scan.  Callers with an inlined
 * scalar scan (the domain simulator's hot loops) use the same bound
 * to decide when calling out to minIndexU64() pays.
 */
constexpr std::size_t kVectorScanMinLanes = 8;

/**
 * Index of the minimum of @p values[0..count); ties resolve to the
 * lowest index, matching a strict < linear scan.  count == 0 returns
 * 0.  Dispatches per arrivalScanImpl().
 */
std::size_t minIndexU64(const std::uint64_t *values, std::size_t count);

/** The portable scalar kernel behind minIndexU64(). */
std::size_t minIndexU64Scalar(const std::uint64_t *values,
                              std::size_t count);

/**
 * The intrinsic kernel behind minIndexU64(): AVX2 signed-compare min
 * with the unsigned bias trick, then a lowest-index pass over the
 * minimum.  Falls back to the scalar loop when vectorScanAvailable()
 * is false.
 */
std::size_t minIndexU64Vector(const std::uint64_t *values,
                              std::size_t count);

/** @} */

} // namespace suit::emu

#endif // SUIT_EMU_SIMD_OPS_HH
