/**
 * @file
 * AES-128-GCM built entirely from the faultable-instruction
 * emulation payloads.
 *
 * The Nginx workload the paper evaluates is TLS with AES-GCM: AESENC
 * rounds for the counter-mode keystream and carry-less
 * multiplication (VPCLMULQDQ) for the GHASH authentication.  This
 * module assembles those payloads into the full authenticated
 * cipher, so the secure-service example and tests can push real TLS
 * records through exactly the instructions SUIT disables, validated
 * against the NIST GCM test vectors.
 */

#ifndef SUIT_EMU_GCM_HH
#define SUIT_EMU_GCM_HH

#include <cstdint>
#include <vector>

#include "emu/aes.hh"

namespace suit::emu {

/** A 128-bit GHASH element, GCM bit convention. */
struct Gf128
{
    /** Bytes 0-7 of the block, big-endian (bit 0 = MSB of byte 0). */
    std::uint64_t hi = 0;
    /** Bytes 8-15, big-endian. */
    std::uint64_t lo = 0;

    bool operator==(const Gf128 &other) const = default;
};

/** Convert a 16-byte block to the GHASH element representation. */
Gf128 gf128FromBlock(const AesBlock &block);

/** Convert back to the byte representation. */
AesBlock gf128ToBlock(const Gf128 &element);

/**
 * GF(2^128) multiplication with the GCM polynomial
 * x^128 + x^7 + x^2 + x + 1 in the reflected bit order NIST
 * SP 800-38D specifies (constant time: no tables, no branches on
 * data beyond fixed-count loops).
 */
Gf128 gf128Mul(const Gf128 &x, const Gf128 &y);

/** GHASH over a byte string (zero-padded to blocks) under key H. */
Gf128 ghash(const Gf128 &h, const std::vector<std::uint8_t> &data);

/** Result of an authenticated encryption. */
struct GcmSealed
{
    std::vector<std::uint8_t> ciphertext;
    AesBlock tag{};
};

/** AES-128-GCM with 96-bit IVs. */
class Aes128Gcm
{
  public:
    /** Expand the key and derive the GHASH subkey H = E_K(0). */
    explicit Aes128Gcm(const AesBlock &key);

    /**
     * Encrypt and authenticate.
     *
     * @param iv 12-byte initialisation vector.
     * @param plaintext message bytes.
     * @param aad additional authenticated data.
     */
    GcmSealed seal(const std::vector<std::uint8_t> &iv,
                   const std::vector<std::uint8_t> &plaintext,
                   const std::vector<std::uint8_t> &aad = {}) const;

    /**
     * Decrypt and verify.
     *
     * @param[out] plaintext receives the message on success.
     * @return false if the tag does not verify (plaintext untouched).
     */
    bool open(const std::vector<std::uint8_t> &iv,
              const std::vector<std::uint8_t> &ciphertext,
              const AesBlock &tag,
              std::vector<std::uint8_t> *plaintext,
              const std::vector<std::uint8_t> &aad = {}) const;

    /** The GHASH subkey (for tests). */
    const Gf128 &subkey() const { return h_; }

  private:
    Aes128 aes_;
    Gf128 h_;

    AesBlock counterBlock(const std::vector<std::uint8_t> &iv,
                          std::uint32_t counter) const;
    AesBlock tagFor(const std::vector<std::uint8_t> &iv,
                    const std::vector<std::uint8_t> &ciphertext,
                    const std::vector<std::uint8_t> &aad) const;
};

} // namespace suit::emu

#endif // SUIT_EMU_GCM_HH
