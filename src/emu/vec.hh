/**
 * @file
 * 256-bit vector value type.
 *
 * The operand/result container for the instruction-emulation layer
 * (paper Sec. 3.4): a plain 256-bit register image with typed lane
 * views.  Lane order is little-endian like the x86 YMM registers the
 * emulated instructions operate on.
 */

#ifndef SUIT_EMU_VEC_HH
#define SUIT_EMU_VEC_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace suit::emu {

/** A 256-bit register image with u8/u32/u64/f64 lane accessors. */
class Vec256
{
  public:
    /** Zero value. */
    constexpr Vec256() : words_{} {}

    /** Construct from four 64-bit words (word 0 = least significant). */
    constexpr Vec256(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                     std::uint64_t w3)
        : words_{w0, w1, w2, w3}
    {}

    /** Broadcast a 64-bit word into all four lanes. */
    static constexpr Vec256
    broadcast64(std::uint64_t w)
    {
        return Vec256(w, w, w, w);
    }

    /** Construct from four doubles (lane 0 first). */
    static Vec256 fromDoubles(double d0, double d1, double d2, double d3);

    /** Construct from raw bytes (32 bytes, byte 0 first). */
    static Vec256 fromBytes(const std::uint8_t *bytes);

    /** @{ 64-bit lane access. */
    std::uint64_t u64(int lane) const;
    void setU64(int lane, std::uint64_t v);
    /** @} */

    /** @{ 32-bit lane access (8 lanes). */
    std::uint32_t u32(int lane) const;
    void setU32(int lane, std::uint32_t v);
    /** @} */

    /** @{ Byte access (32 lanes). */
    std::uint8_t u8(int lane) const;
    void setU8(int lane, std::uint8_t v);
    /** @} */

    /** @{ Double-precision lane access (4 lanes). */
    double f64(int lane) const;
    void setF64(int lane, double v);
    /** @} */

    /** Copy out all 32 bytes. */
    void toBytes(std::uint8_t *out) const;

    /** Hex dump, most significant word first. */
    std::string toString() const;

    bool operator==(const Vec256 &other) const = default;

  private:
    std::array<std::uint64_t, 4> words_;
};

} // namespace suit::emu

#endif // SUIT_EMU_VEC_HH
