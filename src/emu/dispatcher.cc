#include "emu/dispatcher.hh"

#include "emu/aes.hh"
#include "emu/simd_ops.hh"
#include "util/logging.hh"

namespace suit::emu {

using suit::isa::FaultableKind;

namespace {

AesBlock
lowBlock(const Vec256 &v)
{
    AesBlock b;
    for (int i = 0; i < 16; ++i)
        b[static_cast<std::size_t>(i)] = v.u8(i);
    return b;
}

Vec256
withLowBlock(const Vec256 &v, const AesBlock &b)
{
    Vec256 out = v;
    for (int i = 0; i < 16; ++i)
        out.setU8(i, b[static_cast<std::size_t>(i)]);
    return out;
}

} // namespace

Vec256
emulate(const EmuRequest &req)
{
    switch (req.kind) {
      case FaultableKind::VOR:
        return vor(req.a, req.b);
      case FaultableKind::VXOR:
        return vxor(req.a, req.b);
      case FaultableKind::VAND:
        return vand(req.a, req.b);
      case FaultableKind::VANDN:
        return vandn(req.a, req.b);
      case FaultableKind::VPADDQ:
        return vpaddq(req.a, req.b);
      case FaultableKind::VPSRAD:
        return vpsrad(req.a, req.imm);
      case FaultableKind::VPCMP:
        return vpcmpgtd(req.a, req.b);
      case FaultableKind::VPMAX:
        return vpmaxsd(req.a, req.b);
      case FaultableKind::VSQRTPD:
        return vsqrtpd(req.a);
      case FaultableKind::VPCLMULQDQ:
        return vpclmulqdq(req.a, req.b, req.imm);
      case FaultableKind::AESENC: {
        // Side-channel-resilient bit-sliced round (paper Sec. 3.4);
        // legacy-SSE semantics: upper 128 bits pass through.
        const AesBlock out = aesencRoundBitsliced(lowBlock(req.a),
                                                  lowBlock(req.b));
        return withLowBlock(req.a, out);
      }
      case FaultableKind::IMUL: {
        const Int128 p =
            imulFull(static_cast<std::int64_t>(req.a.u64(0)),
                     static_cast<std::int64_t>(req.b.u64(0)));
        return Vec256(p.lo, static_cast<std::uint64_t>(p.hi), 0, 0);
      }
      case FaultableKind::NumKinds:
        break;
    }
    SUIT_PANIC("emulate(): bad kind %d", static_cast<int>(req.kind));
}

double
emulationCostCycles(FaultableKind kind)
{
    switch (kind) {
      case FaultableKind::VOR:
      case FaultableKind::VXOR:
      case FaultableKind::VAND:
      case FaultableKind::VANDN:
        return 20.0;  // four scalar 64-bit ops + moves
      case FaultableKind::VPADDQ:
        return 25.0;
      case FaultableKind::VPSRAD:
      case FaultableKind::VPCMP:
      case FaultableKind::VPMAX:
        return 30.0;  // eight 32-bit lanes
      case FaultableKind::VSQRTPD:
        return 80.0;  // four scalar sqrtsd
      case FaultableKind::VPCLMULQDQ:
        return 250.0; // 64-iteration shift/xor loop
      case FaultableKind::AESENC:
        return 1200.0; // bit-sliced round, ~13 plane multiplies
      case FaultableKind::IMUL:
        return 10.0;
      case FaultableKind::NumKinds:
        break;
    }
    SUIT_PANIC("emulationCostCycles(): bad kind %d",
               static_cast<int>(kind));
}

} // namespace suit::emu
