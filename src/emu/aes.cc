#include "emu/aes.hh"

#include "util/logging.hh"

namespace suit::emu {

namespace {

/** The AES forward S-box (FIPS-197). */
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

/** Constant-time GF(2^8) doubling (xtime). */
std::uint8_t
xtime(std::uint8_t b)
{
    return static_cast<std::uint8_t>(
        (b << 1) ^ (0x1B & static_cast<std::uint8_t>(
                               -static_cast<std::int8_t>(b >> 7))));
}

/** ShiftRows on the x86 column-major state layout. */
AesBlock
shiftRows(const AesBlock &s)
{
    AesBlock r;
    for (int col = 0; col < 4; ++col) {
        for (int row = 0; row < 4; ++row) {
            // Row `row` rotates left by `row` columns.
            const int src_col = (col + row) % 4;
            r[static_cast<std::size_t>(4 * col + row)] =
                s[static_cast<std::size_t>(4 * src_col + row)];
        }
    }
    return r;
}

/** MixColumns on the x86 column-major state layout. */
AesBlock
mixColumns(const AesBlock &s)
{
    AesBlock r;
    for (int col = 0; col < 4; ++col) {
        const std::uint8_t a0 = s[static_cast<std::size_t>(4 * col)];
        const std::uint8_t a1 = s[static_cast<std::size_t>(4 * col + 1)];
        const std::uint8_t a2 = s[static_cast<std::size_t>(4 * col + 2)];
        const std::uint8_t a3 = s[static_cast<std::size_t>(4 * col + 3)];
        r[static_cast<std::size_t>(4 * col)] = static_cast<std::uint8_t>(
            xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        r[static_cast<std::size_t>(4 * col + 1)] =
            static_cast<std::uint8_t>(a0 ^ xtime(a1) ^
                                      (xtime(a2) ^ a2) ^ a3);
        r[static_cast<std::size_t>(4 * col + 2)] =
            static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                      (xtime(a3) ^ a3));
        r[static_cast<std::size_t>(4 * col + 3)] =
            static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^
                                      xtime(a3));
    }
    return r;
}

AesBlock
addRoundKey(const AesBlock &s, const AesBlock &k)
{
    AesBlock r;
    for (std::size_t i = 0; i < 16; ++i)
        r[i] = s[i] ^ k[i];
    return r;
}

AesBlock
subBytes(const AesBlock &s)
{
    AesBlock r;
    for (std::size_t i = 0; i < 16; ++i)
        r[i] = kSbox[s[i]];
    return r;
}

/** Bit-sliced SubBytes: GF inversion + affine, no table lookups. */
AesBlock
subBytesBitsliced(const AesBlock &s)
{
    const AesPlanes x = aesToPlanes(s);
    const AesPlanes inv = gfInvPlanes(x);
    // Affine transform: s_i = x_i ^ x_(i+4) ^ x_(i+5) ^ x_(i+6)
    //                        ^ x_(i+7) ^ c_i, with c = 0x63.
    AesPlanes out;
    for (int i = 0; i < 8; ++i) {
        std::uint16_t p = inv[static_cast<std::size_t>(i)];
        p ^= inv[static_cast<std::size_t>((i + 4) % 8)];
        p ^= inv[static_cast<std::size_t>((i + 5) % 8)];
        p ^= inv[static_cast<std::size_t>((i + 6) % 8)];
        p ^= inv[static_cast<std::size_t>((i + 7) % 8)];
        if ((0x63 >> i) & 1)
            p ^= 0xFFFF;
        out[static_cast<std::size_t>(i)] = p;
    }
    return aesFromPlanes(out);
}

/** Inverse S-box, derived from the forward table at first use. */
const std::uint8_t *
invSbox()
{
    static const auto table = [] {
        std::array<std::uint8_t, 256> t{};
        for (int i = 0; i < 256; ++i)
            t[kSbox[i]] = static_cast<std::uint8_t>(i);
        return t;
    }();
    return table.data();
}

/** InvShiftRows on the x86 column-major state layout. */
AesBlock
invShiftRows(const AesBlock &s)
{
    AesBlock r;
    for (int col = 0; col < 4; ++col) {
        for (int row = 0; row < 4; ++row) {
            // Row `row` rotates right by `row` columns.
            const int src_col = (col - row + 4) % 4;
            r[static_cast<std::size_t>(4 * col + row)] =
                s[static_cast<std::size_t>(4 * src_col + row)];
        }
    }
    return r;
}

AesBlock
invSubBytes(const AesBlock &s)
{
    AesBlock r;
    for (std::size_t i = 0; i < 16; ++i)
        r[i] = invSbox()[s[i]];
    return r;
}

/** InvMixColumns (coefficients 0E 0B 0D 09), constant time. */
AesBlock
invMixColumns(const AesBlock &s)
{
    auto x2 = [](std::uint8_t b) { return xtime(b); };
    auto mul = [&](std::uint8_t a, int c) -> std::uint8_t {
        const std::uint8_t a2 = x2(a);
        const std::uint8_t a4 = x2(a2);
        const std::uint8_t a8 = x2(a4);
        switch (c) {
          case 0x9:
            return static_cast<std::uint8_t>(a8 ^ a);
          case 0xB:
            return static_cast<std::uint8_t>(a8 ^ a2 ^ a);
          case 0xD:
            return static_cast<std::uint8_t>(a8 ^ a4 ^ a);
          case 0xE:
            return static_cast<std::uint8_t>(a8 ^ a4 ^ a2);
        }
        return 0;
    };
    AesBlock r;
    for (int col = 0; col < 4; ++col) {
        const std::uint8_t a0 = s[static_cast<std::size_t>(4 * col)];
        const std::uint8_t a1 = s[static_cast<std::size_t>(4 * col + 1)];
        const std::uint8_t a2 = s[static_cast<std::size_t>(4 * col + 2)];
        const std::uint8_t a3 = s[static_cast<std::size_t>(4 * col + 3)];
        r[static_cast<std::size_t>(4 * col)] = static_cast<std::uint8_t>(
            mul(a0, 0xE) ^ mul(a1, 0xB) ^ mul(a2, 0xD) ^ mul(a3, 0x9));
        r[static_cast<std::size_t>(4 * col + 1)] =
            static_cast<std::uint8_t>(mul(a0, 0x9) ^ mul(a1, 0xE) ^
                                      mul(a2, 0xB) ^ mul(a3, 0xD));
        r[static_cast<std::size_t>(4 * col + 2)] =
            static_cast<std::uint8_t>(mul(a0, 0xD) ^ mul(a1, 0x9) ^
                                      mul(a2, 0xE) ^ mul(a3, 0xB));
        r[static_cast<std::size_t>(4 * col + 3)] =
            static_cast<std::uint8_t>(mul(a0, 0xB) ^ mul(a1, 0xD) ^
                                      mul(a2, 0x9) ^ mul(a3, 0xE));
    }
    return r;
}

} // namespace

std::uint8_t
aesSubByte(std::uint8_t b)
{
    return kSbox[b];
}

std::uint8_t
aesInvSubByte(std::uint8_t b)
{
    return invSbox()[b];
}

AesBlock
aesdecRound(const AesBlock &state, const AesBlock &round_key)
{
    return addRoundKey(
        invMixColumns(invSubBytes(invShiftRows(state))), round_key);
}

AesBlock
aesdeclastRound(const AesBlock &state, const AesBlock &round_key)
{
    return addRoundKey(invSubBytes(invShiftRows(state)), round_key);
}

AesBlock
aesimc(const AesBlock &round_key)
{
    return invMixColumns(round_key);
}

AesBlock
aesencRound(const AesBlock &state, const AesBlock &round_key)
{
    return addRoundKey(mixColumns(subBytes(shiftRows(state))),
                       round_key);
}

AesBlock
aesenclastRound(const AesBlock &state, const AesBlock &round_key)
{
    return addRoundKey(subBytes(shiftRows(state)), round_key);
}

AesBlock
aesencRoundBitsliced(const AesBlock &state, const AesBlock &round_key)
{
    return addRoundKey(
        mixColumns(subBytesBitsliced(shiftRows(state))), round_key);
}

AesBlock
aesenclastRoundBitsliced(const AesBlock &state,
                         const AesBlock &round_key)
{
    return addRoundKey(subBytesBitsliced(shiftRows(state)), round_key);
}

Aes128::Aes128(const AesBlock &key)
{
    roundKeys_[0] = key;
    std::uint8_t rcon = 0x01;
    for (int r = 1; r <= 10; ++r) {
        const AesBlock &prev = roundKeys_[static_cast<std::size_t>(r - 1)];
        AesBlock &next = roundKeys_[static_cast<std::size_t>(r)];
        // Rotate, substitute and rcon the last word of the previous key.
        std::uint8_t t[4] = {
            static_cast<std::uint8_t>(kSbox[prev[13]] ^ rcon),
            kSbox[prev[14]], kSbox[prev[15]], kSbox[prev[12]]};
        for (int i = 0; i < 4; ++i)
            next[static_cast<std::size_t>(i)] =
                prev[static_cast<std::size_t>(i)] ^ t[i];
        for (int i = 4; i < 16; ++i)
            next[static_cast<std::size_t>(i)] =
                prev[static_cast<std::size_t>(i)] ^
                next[static_cast<std::size_t>(i - 4)];
        rcon = xtime(rcon);
    }
}

AesBlock
Aes128::encrypt(const AesBlock &plaintext) const
{
    AesBlock s = addRoundKey(plaintext, roundKeys_[0]);
    for (int r = 1; r < 10; ++r)
        s = aesencRound(s, roundKeys_[static_cast<std::size_t>(r)]);
    return aesenclastRound(s, roundKeys_[10]);
}

AesBlock
Aes128::encryptBitsliced(const AesBlock &plaintext) const
{
    AesBlock s = addRoundKey(plaintext, roundKeys_[0]);
    for (int r = 1; r < 10; ++r)
        s = aesencRoundBitsliced(
            s, roundKeys_[static_cast<std::size_t>(r)]);
    return aesenclastRoundBitsliced(s, roundKeys_[10]);
}

AesBlock
Aes128::decrypt(const AesBlock &ciphertext) const
{
    // Equivalent inverse cipher: AESDEC rounds consume the expanded
    // keys in reverse, with the inner keys passed through AESIMC —
    // exactly how AES-NI decryption key schedules are prepared.
    AesBlock s = addRoundKey(ciphertext, roundKeys_[10]);
    for (int r = 9; r >= 1; --r)
        s = aesdecRound(
            s, aesimc(roundKeys_[static_cast<std::size_t>(r)]));
    return aesdeclastRound(s, roundKeys_[0]);
}

const AesBlock &
Aes128::roundKey(int i) const
{
    SUIT_ASSERT(i >= 0 && i <= 10, "round key %d out of range", i);
    return roundKeys_[static_cast<std::size_t>(i)];
}

AesPlanes
aesToPlanes(const AesBlock &block)
{
    AesPlanes planes{};
    for (int byte = 0; byte < 16; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            const std::uint16_t b =
                (block[static_cast<std::size_t>(byte)] >> bit) & 1;
            planes[static_cast<std::size_t>(bit)] |=
                static_cast<std::uint16_t>(b << byte);
        }
    }
    return planes;
}

AesBlock
aesFromPlanes(const AesPlanes &planes)
{
    AesBlock block{};
    for (int byte = 0; byte < 16; ++byte) {
        std::uint8_t v = 0;
        for (int bit = 0; bit < 8; ++bit) {
            v |= static_cast<std::uint8_t>(
                ((planes[static_cast<std::size_t>(bit)] >> byte) & 1)
                << bit);
        }
        block[static_cast<std::size_t>(byte)] = v;
    }
    return block;
}

AesPlanes
gfMulPlanes(const AesPlanes &a, const AesPlanes &b)
{
    // Schoolbook GF(2)[x] product of the two degree-7 polynomials,
    // coefficient-plane-wise, then reduction mod x^8+x^4+x^3+x+1.
    std::uint16_t t[15] = {};
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
            t[i + j] ^= static_cast<std::uint16_t>(
                a[static_cast<std::size_t>(i)] &
                b[static_cast<std::size_t>(j)]);
        }
    }
    for (int k = 14; k >= 8; --k) {
        t[k - 4] ^= t[k];
        t[k - 5] ^= t[k];
        t[k - 7] ^= t[k];
        t[k - 8] ^= t[k];
    }
    AesPlanes out;
    for (int i = 0; i < 8; ++i)
        out[static_cast<std::size_t>(i)] = t[i];
    return out;
}

AesPlanes
gfInvPlanes(const AesPlanes &a)
{
    // x^254 = x^-1 for x != 0 (and maps 0 to 0).  Addition chain:
    // x^2, x^3, x^12, x^15, x^240, x^252, x^254.
    const AesPlanes x2 = gfMulPlanes(a, a);
    const AesPlanes x3 = gfMulPlanes(x2, a);
    AesPlanes x12 = gfMulPlanes(x3, x3);
    x12 = gfMulPlanes(x12, x12);
    const AesPlanes x15 = gfMulPlanes(x12, x3);
    AesPlanes x240 = x15;
    for (int i = 0; i < 4; ++i)
        x240 = gfMulPlanes(x240, x240);
    const AesPlanes x252 = gfMulPlanes(x240, x12);
    return gfMulPlanes(x252, x2);
}

} // namespace suit::emu
