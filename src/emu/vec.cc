#include "emu/vec.hh"

#include "util/format.hh"
#include "util/logging.hh"

namespace suit::emu {

Vec256
Vec256::fromDoubles(double d0, double d1, double d2, double d3)
{
    Vec256 v;
    v.setF64(0, d0);
    v.setF64(1, d1);
    v.setF64(2, d2);
    v.setF64(3, d3);
    return v;
}

Vec256
Vec256::fromBytes(const std::uint8_t *bytes)
{
    Vec256 v;
    std::memcpy(v.words_.data(), bytes, 32);
    return v;
}

std::uint64_t
Vec256::u64(int lane) const
{
    SUIT_ASSERT(lane >= 0 && lane < 4, "u64 lane %d out of range", lane);
    return words_[static_cast<std::size_t>(lane)];
}

void
Vec256::setU64(int lane, std::uint64_t v)
{
    SUIT_ASSERT(lane >= 0 && lane < 4, "u64 lane %d out of range", lane);
    words_[static_cast<std::size_t>(lane)] = v;
}

std::uint32_t
Vec256::u32(int lane) const
{
    SUIT_ASSERT(lane >= 0 && lane < 8, "u32 lane %d out of range", lane);
    const std::uint64_t w = words_[static_cast<std::size_t>(lane / 2)];
    return static_cast<std::uint32_t>(lane % 2 ? w >> 32 : w);
}

void
Vec256::setU32(int lane, std::uint32_t v)
{
    SUIT_ASSERT(lane >= 0 && lane < 8, "u32 lane %d out of range", lane);
    std::uint64_t &w = words_[static_cast<std::size_t>(lane / 2)];
    if (lane % 2) {
        w = (w & 0x00000000FFFFFFFFULL) |
            (static_cast<std::uint64_t>(v) << 32);
    } else {
        w = (w & 0xFFFFFFFF00000000ULL) | v;
    }
}

std::uint8_t
Vec256::u8(int lane) const
{
    SUIT_ASSERT(lane >= 0 && lane < 32, "u8 lane %d out of range", lane);
    const std::uint64_t w = words_[static_cast<std::size_t>(lane / 8)];
    return static_cast<std::uint8_t>(w >> (8 * (lane % 8)));
}

void
Vec256::setU8(int lane, std::uint8_t v)
{
    SUIT_ASSERT(lane >= 0 && lane < 32, "u8 lane %d out of range", lane);
    std::uint64_t &w = words_[static_cast<std::size_t>(lane / 8)];
    const int shift = 8 * (lane % 8);
    w = (w & ~(0xFFULL << shift)) |
        (static_cast<std::uint64_t>(v) << shift);
}

double
Vec256::f64(int lane) const
{
    double d;
    const std::uint64_t w = u64(lane);
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

void
Vec256::setF64(int lane, double v)
{
    std::uint64_t w;
    std::memcpy(&w, &v, sizeof(w));
    setU64(lane, w);
}

void
Vec256::toBytes(std::uint8_t *out) const
{
    std::memcpy(out, words_.data(), 32);
}

std::string
Vec256::toString() const
{
    return suit::util::sformat(
        "%016llx:%016llx:%016llx:%016llx",
        static_cast<unsigned long long>(words_[3]),
        static_cast<unsigned long long>(words_[2]),
        static_cast<unsigned long long>(words_[1]),
        static_cast<unsigned long long>(words_[0]));
}

} // namespace suit::emu
