#include "os/exception.hh"

#include "obs/registry.hh"
#include "util/logging.hh"

namespace suit::os {

ExceptionTable::ExceptionTable(double exception_delay_us,
                               double emulation_call_us)
    : exceptionDelayUs_(exception_delay_us),
      emulationCallUs_(emulation_call_us)
{
    SUIT_ASSERT(exception_delay_us >= 0.0 && emulation_call_us >= 0.0,
                "exception costs cannot be negative");
}

int
ExceptionTable::index(ExceptionVector vec)
{
    switch (vec) {
      case ExceptionVector::InvalidOpcode:
        return 0;
      case ExceptionVector::DisabledOpcode:
        return 1;
    }
    SUIT_PANIC("unknown exception vector %d", static_cast<int>(vec));
}

void
ExceptionTable::registerHandler(ExceptionVector vec, Handler handler)
{
    handlers_[index(vec)] = std::move(handler);
}

bool
ExceptionTable::hasHandler(ExceptionVector vec) const
{
    return static_cast<bool>(handlers_[index(vec)]);
}

void
ExceptionTable::raise(ExceptionVector vec, const TrapFrame &frame)
{
    const Handler &h = handlers_[index(vec)];
    SUIT_ASSERT(h, "exception vector %d raised with no handler "
                   "installed (double fault)",
                static_cast<int>(vec));
    ++raiseCount_;
    {
        // One relaxed load when the registry is off; ids registered
        // once per process.
        static const obs::MetricId ud =
            obs::metrics().counter("os.exceptions.ud");
        static const obs::MetricId dis =
            obs::metrics().counter("os.exceptions.do");
        obs::metrics().add(
            vec == ExceptionVector::DisabledOpcode ? dis : ud);
    }
    h(frame);
}

suit::util::Tick
ExceptionTable::entryCost() const
{
    return suit::util::microsecondsToTicks(exceptionDelayUs_);
}

suit::util::Tick
ExceptionTable::emulationCallCost() const
{
    return suit::util::microsecondsToTicks(emulationCallUs_);
}

} // namespace suit::os
