#include "os/emulation_service.hh"

#include "util/logging.hh"

namespace suit::os {

EmulationService::EmulationService(const ExceptionTable &table)
    : table_(table)
{
}

EmulationOutcome
EmulationService::emulate(const suit::emu::EmuRequest &req,
                          double freq_hz) const
{
    EmulationOutcome out;
    out.result = suit::emu::emulate(req);
    out.cost = emulationCost(req.kind, freq_hz);
    return out;
}

suit::util::Tick
EmulationService::emulationCost(suit::isa::FaultableKind kind,
                                double freq_hz) const
{
    SUIT_ASSERT(freq_hz > 0.0, "emulation cost needs a clock");
    ++count_;
    const double body_s =
        suit::emu::emulationCostCycles(kind) / freq_hz;
    return table_.emulationCallCost() +
           suit::util::secondsToTicks(body_s);
}

} // namespace suit::os
