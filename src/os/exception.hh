/**
 * @file
 * CPU exception vectors and the #DO dispatch path.
 *
 * SUIT claims one of the reserved Intel interrupt vectors for the new
 * Disabled Opcode (#DO) exception (paper Sec. 3.3).  Like other CPU
 * exceptions it preserves the register state so the faulting program
 * can continue.  This module models the vector table and charges the
 * measured kernel entry costs (Sec. 5.3).
 */

#ifndef SUIT_OS_EXCEPTION_HH
#define SUIT_OS_EXCEPTION_HH

#include <cstdint>
#include <functional>

#include "isa/faultable.hh"
#include "util/ticks.hh"

namespace suit::os {

/** The exception vectors the model knows about. */
enum class ExceptionVector : std::uint8_t
{
    InvalidOpcode = 6,   //!< #UD, the existing trap SUIT mirrors
    DisabledOpcode = 21, //!< #DO, one of Intel's reserved vectors
};

/** Information delivered with a #DO exception. */
struct TrapFrame
{
    /** The disabled instruction that was fetched. */
    suit::isa::FaultableKind kind = suit::isa::FaultableKind::VOR;
    /** Position of the instruction in its stream. */
    std::uint64_t instructionIndex = 0;
    /** Core that raised the exception. */
    int coreId = 0;
    /** Simulated time of the trap. */
    suit::util::Tick when = 0;
};

/**
 * The kernel's exception table plus the measured costs of getting
 * into (and back out of) the handler.
 */
class ExceptionTable
{
  public:
    /** Handler signature: receives the trap frame. */
    using Handler = std::function<void(const TrapFrame &)>;

    /**
     * @param exception_delay_us user space -> handler entry latency
     *        (paper Sec. 5.3: 0.34 us on the i9, 0.11 us on the AMD).
     * @param emulation_call_us full user/kernel/user emulation round
     *        trip (0.77 us / 0.27 us).
     */
    ExceptionTable(double exception_delay_us, double emulation_call_us);

    /** Install the handler for a vector. */
    void registerHandler(ExceptionVector vec, Handler handler);

    /** True if a handler is installed. */
    bool hasHandler(ExceptionVector vec) const;

    /**
     * Raise an exception: invokes the installed handler.  Panics on a
     * missing handler (a real CPU would double fault).
     */
    void raise(ExceptionVector vec, const TrapFrame &frame);

    /** Cost of entering the handler, in ticks. */
    suit::util::Tick entryCost() const;

    /**
     * Cost of the full trap-to-user-space-emulation round trip
     * (two kernel transitions, Sec. 3.4), in ticks, excluding the
     * emulation body itself.
     */
    suit::util::Tick emulationCallCost() const;

    /** Number of exceptions raised so far (for thrash detection). */
    std::uint64_t raiseCount() const { return raiseCount_; }

  private:
    double exceptionDelayUs_;
    double emulationCallUs_;
    Handler handlers_[2];
    std::uint64_t raiseCount_ = 0;

    static int index(ExceptionVector vec);
};

} // namespace suit::os

#endif // SUIT_OS_EXCEPTION_HH
