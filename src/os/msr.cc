#include "os/msr.hh"

namespace suit::os {

std::uint64_t
MsrFile::read(std::uint32_t msr) const
{
    const auto it = values_.find(msr);
    return it == values_.end() ? 0 : it->second;
}

MsrWriteResult
MsrFile::write(std::uint32_t msr, std::uint64_t value)
{
    const auto hook = hooks_.find(msr);
    if (hook != hooks_.end()) {
        const MsrWriteResult r = hook->second(value);
        if (r != MsrWriteResult::Ok)
            return r;
    }
    values_[msr] = value;
    return MsrWriteResult::Ok;
}

void
MsrFile::setWriteHook(std::uint32_t msr, WriteHook hook)
{
    hooks_[msr] = std::move(hook);
}

bool
MsrFile::wasWritten(std::uint32_t msr) const
{
    return values_.count(msr) > 0;
}

} // namespace suit::os
