/**
 * @file
 * User-space instruction emulation service (paper Sec. 3.4).
 *
 * On a #DO trap the kernel can map emulation code into the faulting
 * program and return into it; the emulation computes the result with
 * scalar/bit-sliced code and re-enters the kernel to resume.  The
 * service below performs the actual computation (via suit::emu) and
 * accounts the full cost: the measured two-transition round trip
 * plus the emulation body scaled by the current clock.
 */

#ifndef SUIT_OS_EMULATION_SERVICE_HH
#define SUIT_OS_EMULATION_SERVICE_HH

#include <cstdint>

#include "emu/dispatcher.hh"
#include "os/exception.hh"
#include "util/ticks.hh"

namespace suit::os {

/** Outcome of emulating one trapped instruction. */
struct EmulationOutcome
{
    /** Architectural result of the instruction. */
    suit::emu::Vec256 result;
    /** Total time charged (round trip + body). */
    suit::util::Tick cost = 0;
};

/** Computes results and costs for trapped instructions. */
class EmulationService
{
  public:
    /** @param table exception table supplying the round-trip cost. */
    explicit EmulationService(const ExceptionTable &table);

    /**
     * Emulate one instruction.
     *
     * @param req operands of the trapped instruction.
     * @param freq_hz current core frequency (converts the body's
     *        cycle count into time).
     */
    EmulationOutcome emulate(const suit::emu::EmuRequest &req,
                             double freq_hz) const;

    /**
     * Cost-only variant for the trace simulator, which knows the
     * instruction kind but not concrete operand values.
     */
    suit::util::Tick emulationCost(suit::isa::FaultableKind kind,
                                   double freq_hz) const;

    /** Emulations performed so far. */
    std::uint64_t emulationCount() const { return count_; }

  private:
    const ExceptionTable &table_;
    mutable std::uint64_t count_ = 0;
};

} // namespace suit::os

#endif // SUIT_OS_EMULATION_SERVICE_HH
