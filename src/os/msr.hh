/**
 * @file
 * Model-specific register file.
 *
 * SUIT's hardware-software interface is a pair of new MSRs (paper
 * Secs. 3.2, 3.3): one to disable the faultable instruction set per
 * DVFS domain and one to select the DVFS curve.  This module models
 * a per-domain MSR file with write hooks, so the simulated hardware
 * (trace simulator or uarch model) can react to OS writes exactly
 * like the real registers would — including the hardware-enforced
 * invariant that the efficient curve is only reachable while the
 * faultable instructions are disabled.
 */

#ifndef SUIT_OS_MSR_HH
#define SUIT_OS_MSR_HH

#include <cstdint>
#include <functional>
#include <map>

namespace suit::os {

/** MSR addresses used by the model. */
enum Msr : std::uint32_t
{
    /** Existing p-state request register (Intel semantics). */
    MSR_IA32_PERF_CTL = 0x199,
    /** Existing p-state status register. */
    MSR_IA32_PERF_STATUS = 0x198,
    /** Undocumented voltage-offset register (paper Sec. 2.4). */
    MSR_VOLTAGE_OFFSET = 0x150,
    /** SUIT: bitmask of disabled faultable instructions. */
    MSR_SUIT_DISABLE_OPCODE = 0x1500,
    /** SUIT: DVFS curve select (0 conservative, 1 efficient). */
    MSR_SUIT_DVFS_CURVE = 0x1501,
    /** SUIT: deadline timer reload value in nanoseconds. */
    MSR_SUIT_DEADLINE_NS = 0x1502,
};

/** Result of an MSR write attempt. */
enum class MsrWriteResult
{
    Ok,        //!< value accepted
    Fault,     //!< #GP: rejected by the hardware (invariant violated)
    Unknown,   //!< no such register
};

/**
 * A flat MSR file with per-register write validation hooks, one
 * instance per DVFS domain.
 */
class MsrFile
{
  public:
    /**
     * Write-side hook: receives the proposed value and may reject it
     * by returning Fault (modelling hardware-checked invariants).
     */
    using WriteHook =
        std::function<MsrWriteResult(std::uint64_t value)>;

    /** Read a register; returns 0 for never-written registers. */
    std::uint64_t read(std::uint32_t msr) const;

    /** Write a register, running its hook first if installed. */
    MsrWriteResult write(std::uint32_t msr, std::uint64_t value);

    /** Install a write hook for one register. */
    void setWriteHook(std::uint32_t msr, WriteHook hook);

    /** True if the register has ever been written. */
    bool wasWritten(std::uint32_t msr) const;

  private:
    std::map<std::uint32_t, std::uint64_t> values_;
    std::map<std::uint32_t, WriteHook> hooks_;
};

} // namespace suit::os

#endif // SUIT_OS_MSR_HH
